package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
)

// QAConfig controls the paired question/SPARQL workload generation.
type QAConfig struct {
	KB   KBConfig
	Seed int64
	// Questions is the number of natural-language questions.
	Questions int
	// MaxRelations bounds the relation count k per question (Fig. 17 uses
	// 1..5); k is drawn geometrically so simple questions dominate.
	MaxRelations int
	// NoisyPhraseRate is the fraction of eligible relations rendered with a
	// misleading phrase (top-1 paraphrase wrong).
	NoisyPhraseRate float64
	// WhoRate is the fraction of questions using "Who ..." (no class).
	WhoRate float64
	// ChainRate is the probability a multi-relation question chains instead
	// of fanning out from the answer variable.
	ChainRate float64
	// ExactTwinRate is the fraction of questions whose gold SPARQL is
	// inserted verbatim into the SPARQL workload (τ=0 matches).
	ExactTwinRate float64
	// VariantTwinRate is the fraction receiving a same-shape twin with a
	// different entity (τ=1 matches).
	VariantTwinRate float64
	// ExtraQueries adds unrelated queries to the SPARQL workload.
	ExtraQueries int
	// InverseRate is the fraction of single-relation questions rendered in
	// the inverse "What is the <phrase> <entity>?" form when the predicate
	// has an inverse phrase.
	InverseRate float64
}

// QALD3Config mirrors the QALD-3 benchmark scale: 200 questions with a
// same-sized query workload.
func QALD3Config() QAConfig {
	kb := DefaultKBConfig()
	kb.AmbiguousShare = 0.45
	return QAConfig{
		KB:              kb,
		Seed:            3,
		Questions:       200,
		MaxRelations:    3,
		NoisyPhraseRate: 0.25,
		WhoRate:         0.2,
		ChainRate:       0.4,
		ExactTwinRate:   0.35,
		VariantTwinRate: 0.45,
		ExtraQueries:    120,
		InverseRate:     0.15,
	}
}

// WebQConfig mirrors the WebQuestions + DBpedia-log pairing, scaled by the
// given factor (1.0 ≈ 580 questions / 7300 queries; the paper's full scale
// is factor 10).
func WebQConfig(scale float64) QAConfig {
	if scale <= 0 {
		scale = 1
	}
	kb := DefaultKBConfig()
	kb.Seed = 7
	kb.EntitiesPerClass = 60
	kb.AmbiguousShare = 0.6
	return QAConfig{
		KB:              kb,
		Seed:            7,
		Questions:       int(580 * scale),
		MaxRelations:    4,
		NoisyPhraseRate: 0.3,
		WhoRate:         0.3,
		ChainRate:       0.35,
		ExactTwinRate:   0.25,
		VariantTwinRate: 0.4,
		ExtraQueries:    int(6700 * scale),
		InverseRate:     0.15,
	}
}

// MMConfig mirrors the closed-domain music/movie workload: same scale as
// QALD-3 but restricted domains and low ambiguity (the paper observes higher
// precision on MM for this reason).
func MMConfig() QAConfig {
	kb := DefaultKBConfig()
	kb.Seed = 11
	kb.Domains = MusicMovieDomains
	kb.AmbiguousShare = 0.1
	return QAConfig{
		KB:              kb,
		Seed:            11,
		Questions:       230,
		MaxRelations:    2,
		NoisyPhraseRate: 0.1,
		WhoRate:         0.2,
		ChainRate:       0.3,
		ExactTwinRate:   0.5,
		VariantTwinRate: 0.35,
		ExtraQueries:    25,
	}
}

// Question is one generated natural-language question with its gold query.
type Question struct {
	Text string
	// Gold is the gold-standard SPARQL query (non-empty answers in the KB).
	Gold *sparql.Query
	// GoldSig is the entity-blind signature used to judge pair correctness.
	GoldSig string
	// Relations is the relation count k (Fig. 17).
	Relations int
	// Noisy reports whether a misleading phrase was used.
	Noisy bool
}

// SparqlEntry is one workload query with its joinable graph.
type SparqlEntry struct {
	Query *sparql.Query
	Graph *sparql.QueryGraph
	Sig   string
}

// QAWorkload is a paired workload: N questions and D SPARQL queries over one
// knowledge base.
type QAWorkload struct {
	KB        *KB
	Questions []Question
	Sparql    []SparqlEntry
	Config    QAConfig
}

// GenerateQA builds the full paired workload.
func GenerateQA(cfg QAConfig) (*QAWorkload, error) {
	if cfg.Questions <= 0 {
		return nil, fmt.Errorf("workload: non-positive question count")
	}
	if cfg.MaxRelations <= 0 {
		cfg.MaxRelations = 1
	}
	kb := GenerateKB(cfg.KB)
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &QAWorkload{KB: kb, Config: cfg}

	seenSparql := map[string]bool{}
	addQuery := func(q *sparql.Query) {
		key := q.String()
		if seenSparql[key] {
			return
		}
		qg, err := sparql.BuildQueryGraph(q)
		if err != nil {
			return
		}
		seenSparql[key] = true
		w.Sparql = append(w.Sparql, SparqlEntry{Query: q, Graph: qg, Sig: Signature(qg)})
	}

	for len(w.Questions) < cfg.Questions {
		in, ok := kb.randomIntent(rng, cfg)
		if !ok {
			continue
		}
		text := in.render(kb)
		gold := in.sparql()
		qg, err := sparql.BuildQueryGraph(gold)
		if err != nil {
			continue
		}
		w.Questions = append(w.Questions, Question{
			Text:      text,
			Gold:      gold,
			GoldSig:   Signature(qg),
			Relations: in.relationCount(),
			Noisy:     in.noisy,
		})
		r := rng.Float64()
		switch {
		case r < cfg.ExactTwinRate:
			addQuery(gold)
		case r < cfg.ExactTwinRate+cfg.VariantTwinRate:
			if v, ok := in.variant(kb, rng); ok {
				addQuery(v.sparql())
			}
		}
	}
	for i := 0; i < cfg.ExtraQueries; i++ {
		if in, ok := kb.randomIntent(rng, cfg); ok {
			addQuery(in.sparql())
		}
	}
	return w, nil
}

// HoldoutQuestions draws n fresh questions over the same knowledge base with
// an independent seed — the evaluation set for the Q/A experiments (Tables 4
// and 5). decorationRate prefixes a fraction of questions with filler words,
// lowering their matching proportion φ below 1.
func (w *QAWorkload) HoldoutQuestions(seed int64, n int, decorationRate float64) []Question {
	rng := rand.New(rand.NewSource(seed))
	decorations := []string{"By the way", "Tell me", "I wonder", "Please tell me"}
	var out []Question
	for len(out) < n {
		in, ok := w.KB.randomIntent(rng, w.Config)
		if !ok {
			continue
		}
		text := in.render(w.KB)
		if rng.Float64() < decorationRate {
			text = decorations[rng.Intn(len(decorations))] + " " + strings.ToLower(text[:1]) + text[1:]
		}
		gold := in.sparql()
		qg, err := sparql.BuildQueryGraph(gold)
		if err != nil {
			continue
		}
		out = append(out, Question{
			Text:      text,
			Gold:      gold,
			GoldSig:   Signature(qg),
			Relations: in.relationCount(),
			Noisy:     in.noisy,
		})
	}
	return out
}

// intent is a question plan: an answer variable with a fan-out or chain of
// relation steps grounded in actual KB facts.
type intent struct {
	class string // answer class; "" for who-questions
	chain bool
	steps []intentStep
	noisy bool
	// inverse marks "What is the <phrase> <entity>?" intents: the answer is
	// the OBJECT of a single fact whose subject is a concrete entity.
	inverse        bool
	inversePhrase  string
	inverseSubject Entity
	inversePred    *Predicate
}

type intentStep struct {
	pred   *Predicate
	phrase string
	// objClass is the class of the intermediate variable (chain steps
	// before the last); objEntity terminates star steps and the chain end.
	objClass  string
	objEntity Entity
	terminal  bool
}

// randomIntent draws an intent grounded in the KB so the gold query has at
// least one answer.
func (kb *KB) randomIntent(rng *rand.Rand, cfg QAConfig) (*intent, bool) {
	// Geometric k within [1, MaxRelations].
	k := 1
	for k < cfg.MaxRelations && rng.Float64() < 0.45 {
		k++
	}
	in := &intent{chain: k > 1 && rng.Float64() < cfg.ChainRate}

	// Pick a seed subject with enough facts.
	classes := kb.Config.domainClasses()
	var subj Entity
	found := false
	for tries := 0; tries < 30 && !found; tries++ {
		class := classes[rng.Intn(len(classes))]
		insts := kb.Entities[class]
		if len(insts) == 0 {
			continue
		}
		subj = insts[rng.Intn(len(insts))]
		if len(kb.factsOf(subj.Name)) > 0 {
			found = true
		}
	}
	if !found {
		return nil, false
	}

	// Inverse form: "What is the <phrase> <subject>?" asking for a fact's
	// object.
	if k == 1 && rng.Float64() < cfg.InverseRate {
		facts := kb.factsOf(subj.Name)
		perm := rng.Perm(len(facts))
		for _, fi := range perm {
			pred := predicateByName(facts[fi].pred)
			if pred == nil || len(pred.InversePhrases) == 0 {
				continue
			}
			in.inverse = true
			in.inversePhrase = pred.InversePhrases[rng.Intn(len(pred.InversePhrases))]
			in.inverseSubject = subj
			in.inversePred = pred
			return in, true
		}
	}
	if rng.Float64() >= cfg.WhoRate || !isPersonClass(subj.Class) {
		in.class = subj.Class
	}

	cur := subj
	for s := 0; s < k; s++ {
		facts := kb.factsOf(cur.Name)
		if len(facts) == 0 {
			break
		}
		f := facts[rng.Intn(len(facts))]
		pred := predicateByName(f.pred)
		if pred == nil {
			continue
		}
		step := intentStep{pred: pred, phrase: kb.pickPhrase(rng, pred, cfg, in)}
		last := s == k-1
		objEnt, ok := kb.entityByName(f.obj)
		if !ok {
			break
		}
		if in.chain && !last {
			step.objClass = objEnt.Class
			cur = objEnt
		} else {
			step.objEntity = objEnt
			step.terminal = true
		}
		in.steps = append(in.steps, step)
		if !in.chain {
			cur = subj
		}
	}
	if len(in.steps) == 0 {
		return nil, false
	}
	// A chain whose last step was forced non-terminal is invalid.
	lastStep := in.steps[len(in.steps)-1]
	if !lastStep.terminal {
		return nil, false
	}
	return in, true
}

// pickPhrase chooses the NL phrase for a predicate, possibly a noisy one.
func (kb *KB) pickPhrase(rng *rand.Rand, pred *Predicate, cfg QAConfig, in *intent) string {
	if rng.Float64() < cfg.NoisyPhraseRate {
		for _, np := range NoisyPhrases {
			if np.Correct == pred.Name && len(kb.Lexicon.Paraphrase(np.Phrase)) > 0 {
				in.noisy = true
				return np.Phrase
			}
		}
	}
	return pred.Phrases[rng.Intn(len(pred.Phrases))]
}

type fact struct{ pred, obj string }

func (kb *KB) factsOf(subject string) []fact {
	var out []fact
	kb.Store.Match(subject, "", "", func(t rdf.Triple) bool {
		if t.P != "type" {
			out = append(out, fact{t.P, t.O})
		}
		return true
	})
	// Deterministic order: Match streams from map-backed indexes.
	sort.Slice(out, func(i, j int) bool {
		if out[i].pred != out[j].pred {
			return out[i].pred < out[j].pred
		}
		return out[i].obj < out[j].obj
	})
	return out
}

func (kb *KB) entityByName(name string) (Entity, bool) {
	for _, class := range kb.Config.domainClasses() {
		for _, e := range kb.Entities[class] {
			if e.Name == name {
				return e, true
			}
		}
	}
	return Entity{}, false
}

func isPersonClass(c string) bool {
	for _, p := range PersonClasses {
		if p == c {
			return true
		}
	}
	return false
}

// render produces the English question text.
func (in *intent) render(kb *KB) string {
	if in.inverse {
		return "What is " + in.inversePhrase + " " + kb.Mentions[in.inverseSubject.Name] + "?"
	}
	var b strings.Builder
	if in.class != "" {
		b.WriteString("Which ")
		b.WriteString(nounOf(in.class))
	} else {
		b.WriteString("Who")
	}
	for i, s := range in.steps {
		if i > 0 && !in.chain {
			b.WriteString(" and")
		}
		b.WriteString(" ")
		b.WriteString(s.phrase)
		b.WriteString(" ")
		if s.terminal {
			b.WriteString(kb.Mentions[s.objEntity.Name])
		} else {
			b.WriteString("a ")
			b.WriteString(nounOf(s.objClass))
		}
	}
	b.WriteString("?")
	return b.String()
}

// sparql renders the gold query of the intent.
func (in *intent) sparql() *sparql.Query {
	q := &sparql.Query{Vars: []string{"?x"}}
	if in.inverse {
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.Term{Kind: sparql.IRI, Value: in.inverseSubject.Name},
			P: sparql.Term{Kind: sparql.IRI, Value: in.inversePred.Name},
			O: sparql.Term{Kind: sparql.Var, Value: "?x"},
		})
		// Type the answer with the predicate's range, mirroring the typed
		// variable the inverse phrase produces on the question side.
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.Term{Kind: sparql.Var, Value: "?x"},
			P: sparql.Term{Kind: sparql.IRI, Value: "type"},
			O: sparql.Term{Kind: sparql.IRI, Value: in.inversePred.Object},
		})
		return q
	}
	mkVar := func(i int) sparql.Term {
		if i == 0 {
			return sparql.Term{Kind: sparql.Var, Value: "?x"}
		}
		return sparql.Term{Kind: sparql.Var, Value: fmt.Sprintf("?y%d", i)}
	}
	iri := func(v string) sparql.Term { return sparql.Term{Kind: sparql.IRI, Value: v} }

	if in.class != "" {
		q.Patterns = append(q.Patterns, sparql.TriplePattern{S: mkVar(0), P: iri("type"), O: iri(in.class)})
	}
	subj := mkVar(0)
	for i, s := range in.steps {
		var obj sparql.Term
		if s.terminal {
			obj = iri(s.objEntity.Name)
		} else {
			obj = mkVar(i + 1)
		}
		q.Patterns = append(q.Patterns, sparql.TriplePattern{S: subj, P: iri(s.pred.Name), O: obj})
		if !s.terminal {
			q.Patterns = append(q.Patterns, sparql.TriplePattern{S: obj, P: iri("type"), O: iri(s.objClass)})
		}
		if in.chain {
			subj = obj
		}
	}
	return q
}

// relationCount is the k of Fig. 17 (inverse intents have one relation).
func (in *intent) relationCount() int {
	if in.inverse {
		return 1
	}
	return len(in.steps)
}

// variant returns a copy of the intent with the terminal entity swapped for
// another instance of the same class, producing a τ=1 twin query.
func (in *intent) variant(kb *KB, rng *rand.Rand) (*intent, bool) {
	if in.inverse {
		alt, ok := kb.RandomEntity(rng, in.inverseSubject.Class)
		if !ok || alt.Name == in.inverseSubject.Name {
			return nil, false
		}
		v := *in
		v.inverseSubject = alt
		return &v, true
	}
	last := in.steps[len(in.steps)-1]
	alt, ok := kb.RandomEntity(rng, last.objEntity.Class)
	if !ok || alt.Name == last.objEntity.Name {
		return nil, false
	}
	v := *in
	v.steps = append([]intentStep(nil), in.steps...)
	v.steps[len(v.steps)-1].objEntity = alt
	return &v, true
}

// Signature computes the entity-blind canonical form of a query graph: the
// sorted pattern list with entity vertices replaced by a placeholder. Two
// queries "match except for entity phrases" (§7.1.2) iff their signatures
// are equal.
func Signature(qg *sparql.QueryGraph) string {
	entity := make(map[string]bool)
	for v := 0; v < qg.Graph.NumVertices(); v++ {
		if qg.Roles[v] == sparql.RoleEntity {
			entity[qg.Terms[v].Value] = true
		}
	}
	varName := make(map[string]string)
	blind := func(t sparql.Term) string {
		if t.IsVar() {
			if n, ok := varName[t.Value]; ok {
				return n
			}
			n := fmt.Sprintf("?v%d", len(varName)+1)
			varName[t.Value] = n
			return n
		}
		if entity[t.Value] {
			return "_"
		}
		return t.Value
	}
	lines := make([]string, 0, len(qg.Query.Patterns))
	for _, p := range qg.Query.Patterns {
		lines = append(lines, blind(p.S)+" "+blind(p.P)+" "+blind(p.O))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
