package workload

import (
	"reflect"
	"testing"
)

// TestScaledDeterministic pins that the generator is a pure function of its
// config: the milestone bench and the equivalence experiments rely on
// regenerating the identical workload from the config alone.
func TestScaledDeterministic(t *testing.T) {
	cfg := SmokeScaledConfig()
	d1, u1 := Scaled(cfg)
	d2, u2 := Scaled(cfg)
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("query side differs between identical configs")
	}
	if !reflect.DeepEqual(u1, u2) {
		t.Fatal("uncertain side differs between identical configs")
	}

	cfg.Seed = 8
	d3, _ := Scaled(cfg)
	if reflect.DeepEqual(d1, d3) {
		t.Fatal("different seeds produced identical query sides")
	}
}

// TestScaledShape sanity-checks sizes and label discipline on the smoke
// config: counts honour the config, every graph is within the vertex bounds,
// and uncertain vertices carry proper distributions.
func TestScaledShape(t *testing.T) {
	cfg := SmokeScaledConfig()
	d, u := Scaled(cfg)
	if len(d) != cfg.Queries || len(u) != cfg.Uncertain {
		t.Fatalf("sizes = %d x %d, want %d x %d", len(d), len(u), cfg.Queries, cfg.Uncertain)
	}
	for i, g := range d {
		if n := g.NumVertices(); n < cfg.MinVertices || n > cfg.MaxVertices+0 {
			t.Fatalf("query %d has %d vertices, want in [%d, %d]", i, n, cfg.MinVertices, cfg.MaxVertices)
		}
	}
	multi := 0
	for _, g := range u {
		for v := 0; v < g.NumVertices(); v++ {
			labels := g.Labels(v)
			if len(labels) > 1 {
				multi++
				sum := 0.0
				for _, l := range labels {
					sum += l.P
				}
				if sum < 0.99 || sum > 1.01 {
					t.Fatalf("uncertain vertex distribution sums to %v", sum)
				}
				if labels[0].P < labels[len(labels)-1].P {
					t.Fatal("true label does not carry the highest confidence")
				}
			}
		}
	}
	if multi == 0 {
		t.Fatal("no uncertain vertices generated")
	}
}

// TestScaledWithScale pins the scaling knob: counts multiply, distribution
// parameters stay fixed, and nothing collapses below one.
func TestScaledWithScale(t *testing.T) {
	cfg := MilestoneScaledConfig()
	small := cfg.WithScale(0.001)
	if small.Queries != 1000 || small.Uncertain != 100 || small.Templates != 10 {
		t.Fatalf("WithScale(0.001) = %d/%d/%d, want 1000/100/10",
			small.Queries, small.Uncertain, small.Templates)
	}
	if small.LabelAlphabet != cfg.LabelAlphabet || small.ClusterLabels != cfg.ClusterLabels {
		t.Fatal("WithScale changed distribution parameters")
	}
	tiny := cfg.WithScale(1e-12)
	if tiny.Queries != 1 || tiny.Uncertain != 1 || tiny.Templates != 1 {
		t.Fatalf("WithScale floor = %d/%d/%d, want 1/1/1", tiny.Queries, tiny.Uncertain, tiny.Templates)
	}
}
