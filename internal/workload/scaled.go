package workload

// The milestone-scale workload generator.
//
// The ER/SF generators above are sized for functional tests; the sharded-join
// milestone (DESIGN.md §15) needs 10^6 queries against 10^5 uncertain graphs
// without drowning the join in either all-misses (random labels never match)
// or all-hits (every pair verifies). Scaled generates both sides from a
// shared pool of templates, so similarity is controlled: a tunable fraction
// of each side are exact template copies (guaranteeing join results), the
// rest are small in-cluster perturbations (guaranteeing near-misses that
// exercise the bound ladder rather than falling to the cheap label screens).
//
// Labels come from a large alphabet partitioned into small clusters; each
// template draws all its labels from one cluster, so banded signatures
// (internal/filter) spread templates across shards while keeping each
// template's derived graphs together.

import (
	"fmt"
	"math/rand"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// ScaledConfig sizes the milestone workload. All counts are clamped to sane
// minimums by Scaled, so partial configs (e.g. WithScale results) stay valid.
type ScaledConfig struct {
	Seed int64
	// Queries and Uncertain size the two join sides; Templates sizes the
	// shared pool both are derived from.
	Queries, Uncertain, Templates int
	// MinVertices/MaxVertices bound template sizes (uniform draw).
	MinVertices, MaxVertices int
	// ExtraEdges are added per template beyond its spanning path.
	ExtraEdges int
	// LabelAlphabet is the total number of distinct vertex labels;
	// ClusterLabels is the span of the contiguous slice each template draws
	// from. Small clusters inside a large alphabet give banded signatures
	// their selectivity.
	LabelAlphabet, ClusterLabels int
	// PerturbEdits counts in-cluster edits applied to non-exact copies.
	PerturbEdits int
	// UncertainVertices/LabelsPerVertex shape the injected uncertainty
	// (as in SyntheticConfig).
	UncertainVertices, LabelsPerVertex int
	// ExactFraction of each side are unperturbed template copies. Exact
	// query copies meeting exact uncertain copies of the same template
	// guarantee the join returns results at any threshold.
	ExactFraction float64
}

// MilestoneScaledConfig is the 10^6 x 10^5 benchmark workload
// (BenchmarkShardMilestone and the shardscale experiment at scale 1).
func MilestoneScaledConfig() ScaledConfig {
	return ScaledConfig{
		Seed:              7,
		Queries:           1_000_000,
		Uncertain:         100_000,
		Templates:         10_000,
		MinVertices:       6,
		MaxVertices:       16,
		ExtraEdges:        2,
		LabelAlphabet:     2000,
		ClusterLabels:     8,
		PerturbEdits:      2,
		UncertainVertices: 3,
		LabelsPerVertex:   2,
		ExactFraction:     0.3,
	}
}

// SmokeScaledConfig is the CI-sized variant: same shape and distributions as
// the milestone, three orders of magnitude smaller.
func SmokeScaledConfig() ScaledConfig {
	cfg := MilestoneScaledConfig()
	cfg.Queries = 1000
	cfg.Uncertain = 100
	cfg.Templates = 20
	cfg.LabelAlphabet = 200
	return cfg
}

// WithScale multiplies the three workload counts by f (minimum 1 each),
// keeping every distribution parameter fixed — the knob the experiments
// runner's -scale flag turns.
func (c ScaledConfig) WithScale(f float64) ScaledConfig {
	if f <= 0 {
		f = 1
	}
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	c.Queries = scale(c.Queries)
	c.Uncertain = scale(c.Uncertain)
	c.Templates = scale(c.Templates)
	return c
}

func scaledLabel(i int) string { return fmt.Sprintf("Z%d", i) }

func (c ScaledConfig) sanitise() ScaledConfig {
	if c.Queries < 1 {
		c.Queries = 1
	}
	if c.Uncertain < 1 {
		c.Uncertain = 1
	}
	if c.Templates < 1 {
		c.Templates = 1
	}
	if c.MinVertices < 2 {
		c.MinVertices = 2
	}
	if c.MaxVertices < c.MinVertices {
		c.MaxVertices = c.MinVertices
	}
	if c.ExtraEdges < 0 {
		c.ExtraEdges = 0
	}
	if c.ClusterLabels < 1 {
		c.ClusterLabels = 1
	}
	if c.LabelAlphabet < c.ClusterLabels {
		c.LabelAlphabet = c.ClusterLabels
	}
	if c.PerturbEdits < 0 {
		c.PerturbEdits = 0
	}
	if c.UncertainVertices < 0 {
		c.UncertainVertices = 0
	}
	if c.LabelsPerVertex < 1 {
		c.LabelsPerVertex = 1
	}
	if c.ExactFraction < 0 {
		c.ExactFraction = 0
	}
	if c.ExactFraction > 1 {
		c.ExactFraction = 1
	}
	return c
}

// Scaled generates the milestone workload: a template pool, then both join
// sides derived from it. Deterministic in the config — the same ScaledConfig
// always yields byte-identical workloads.
func Scaled(cfg ScaledConfig) ([]*graph.Graph, []*ugraph.Graph) {
	cfg = cfg.sanitise()
	// Intern the full alphabet up front in index order, so each template's
	// label cluster occupies consecutive dictionary ids (adjacent bitset
	// words) and the SoA screens stay cache-dense.
	for i := 0; i < cfg.LabelAlphabet; i++ {
		graph.InternLabel(scaledLabel(i))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	templates := make([]*graph.Graph, cfg.Templates)
	clusters := make([]int, cfg.Templates) // cluster base label per template
	for t := range templates {
		clusters[t] = rng.Intn(cfg.LabelAlphabet - cfg.ClusterLabels + 1)
		templates[t] = templateGraph(rng, cfg, clusters[t])
	}

	d := make([]*graph.Graph, cfg.Queries)
	for i := range d {
		t := rng.Intn(cfg.Templates)
		g := templates[t].Clone()
		if rng.Float64() >= cfg.ExactFraction {
			perturbInCluster(rng, g, cfg, clusters[t])
		}
		d[i] = g
	}

	u := make([]*ugraph.Graph, cfg.Uncertain)
	for i := range u {
		t := rng.Intn(cfg.Templates)
		g := templates[t].Clone()
		if rng.Float64() >= cfg.ExactFraction {
			perturbInCluster(rng, g, cfg, clusters[t])
		}
		u[i] = injectClusterUncertainty(rng, g, cfg, clusters[t])
	}
	return d, u
}

// templateGraph builds one template: a spanning path (connected, so perturbed
// copies stay recognisable) plus ExtraEdges chords, all labels drawn from the
// template's cluster.
func templateGraph(rng *rand.Rand, cfg ScaledConfig, cluster int) *graph.Graph {
	n := cfg.MinVertices + rng.Intn(cfg.MaxVertices-cfg.MinVertices+1)
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddVertex(scaledLabel(cluster + rng.Intn(cfg.ClusterLabels)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, "e")
	}
	for e := 0; e < cfg.ExtraEdges; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && !g.HasEdge(a, b) {
			g.MustAddEdge(a, b, "e")
		}
	}
	return g
}

// perturbInCluster applies PerturbEdits edits that stay inside the template's
// label cluster: relabels keep the candidate screens interesting (the edited
// graph still shares most of its label multiset with its template) and edge
// adds nudge the structural bounds.
func perturbInCluster(rng *rand.Rand, g *graph.Graph, cfg ScaledConfig, cluster int) {
	for e := 0; e < cfg.PerturbEdits; e++ {
		v := rng.Intn(g.NumVertices())
		switch rng.Intn(2) {
		case 0:
			g.SetVertexLabel(v, scaledLabel(cluster+rng.Intn(cfg.ClusterLabels)))
		case 1:
			w := rng.Intn(g.NumVertices())
			if v != w && !g.HasEdge(v, w) {
				g.MustAddEdge(v, w, "e")
			}
		}
	}
}

// injectClusterUncertainty converts a certain graph into an uncertain one,
// giving UncertainVertices a label distribution whose alternatives also come
// from the cluster (so a wrong-world label can still match a sibling query).
// The true label keeps the highest confidence, as in injectUncertainty.
func injectClusterUncertainty(rng *rand.Rand, base *graph.Graph, cfg ScaledConfig, cluster int) *ugraph.Graph {
	u := ugraph.New(base.NumVertices())
	uncertain := map[int]bool{}
	for len(uncertain) < cfg.UncertainVertices && len(uncertain) < base.NumVertices() {
		uncertain[rng.Intn(base.NumVertices())] = true
	}
	for v := 0; v < base.NumVertices(); v++ {
		trueLabel := base.VertexLabel(v)
		if !uncertain[v] || cfg.LabelsPerVertex < 2 {
			u.AddVertex(ugraph.Label{Name: trueLabel, P: 1})
			continue
		}
		k := cfg.LabelsPerVertex
		if k > cfg.ClusterLabels {
			k = cfg.ClusterLabels
		}
		if k < 2 {
			u.AddVertex(ugraph.Label{Name: trueLabel, P: 1})
			continue
		}
		confs := zipfConfidences(k)
		labels := []ugraph.Label{{Name: trueLabel, P: confs[0]}}
		seen := map[string]bool{trueLabel: true}
		for len(labels) < k {
			l := scaledLabel(cluster + rng.Intn(cfg.ClusterLabels))
			if seen[l] {
				continue
			}
			seen[l] = true
			labels = append(labels, ugraph.Label{Name: l, P: confs[len(labels)]})
		}
		u.AddVertex(labels...)
	}
	for _, e := range base.Edges() {
		u.MustAddEdge(e.From, e.To, e.Label)
	}
	return u
}
