package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"simjoin/internal/linker"
	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
)

// Dataset file names inside a saved workload directory.
const (
	fileKB        = "kb.nt"
	fileLexicon   = "lexicon.json"
	fileQuestions = "questions.json"
	fileSparql    = "sparql.txt"
	fileMeta      = "meta.json"
)

// questionJSON is the serialised form of a Question (the gold query is
// stored textually).
type questionJSON struct {
	Text      string `json:"text"`
	Gold      string `json:"gold"`
	Relations int    `json:"relations"`
	Noisy     bool   `json:"noisy,omitempty"`
}

// metaJSON records the generator configuration and entity registry needed to
// reload a workload completely.
type metaJSON struct {
	Config   QAConfig            `json:"config"`
	Entities map[string][]Entity `json:"entities"`
	Mentions map[string]string   `json:"mentions"`
}

// Save writes the workload as a directory of plain files: the knowledge
// graph as N-Triples, the lexicon and questions as JSON, and the SPARQL
// workload as one query per line — inspectable and diffable.
func (w *QAWorkload) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// kb.nt
	f, err := os.Create(filepath.Join(dir, fileKB))
	if err != nil {
		return err
	}
	if err := w.KB.Store.WriteNTriples(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// lexicon.json
	if err := writeJSON(filepath.Join(dir, fileLexicon), w.KB.Lexicon); err != nil {
		return err
	}
	// questions.json
	qs := make([]questionJSON, 0, len(w.Questions))
	for _, q := range w.Questions {
		qs = append(qs, questionJSON{Text: q.Text, Gold: q.Gold.String(), Relations: q.Relations, Noisy: q.Noisy})
	}
	if err := writeJSON(filepath.Join(dir, fileQuestions), qs); err != nil {
		return err
	}
	// sparql.txt
	sf, err := os.Create(filepath.Join(dir, fileSparql))
	if err != nil {
		return err
	}
	for _, e := range w.Sparql {
		if _, err := fmt.Fprintln(sf, e.Query.String()); err != nil {
			sf.Close()
			return err
		}
	}
	if err := sf.Close(); err != nil {
		return err
	}
	// meta.json
	return writeJSON(filepath.Join(dir, fileMeta), metaJSON{
		Config:   w.Config,
		Entities: w.KB.Entities,
		Mentions: w.KB.Mentions,
	})
}

// Load reads a workload saved by Save. Gold signatures and query graphs are
// rebuilt from the textual queries.
func Load(dir string) (*QAWorkload, error) {
	var meta metaJSON
	if err := readJSON(filepath.Join(dir, fileMeta), &meta); err != nil {
		return nil, err
	}
	lex := linker.NewLexicon()
	if err := readJSON(filepath.Join(dir, fileLexicon), lex); err != nil {
		return nil, err
	}
	store := rdf.NewStore()
	f, err := os.Open(filepath.Join(dir, fileKB))
	if err != nil {
		return nil, err
	}
	if _, err := store.ReadNTriples(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	w := &QAWorkload{
		KB: &KB{
			Store:    store,
			Lexicon:  lex,
			Entities: meta.Entities,
			Mentions: meta.Mentions,
			Config:   meta.Config.KB,
		},
		Config: meta.Config,
	}

	var qs []questionJSON
	if err := readJSON(filepath.Join(dir, fileQuestions), &qs); err != nil {
		return nil, err
	}
	for i, qj := range qs {
		gold, err := sparql.Parse(qj.Gold)
		if err != nil {
			return nil, fmt.Errorf("workload: question %d gold: %w", i, err)
		}
		qg, err := sparql.BuildQueryGraph(gold)
		if err != nil {
			return nil, fmt.Errorf("workload: question %d gold graph: %w", i, err)
		}
		w.Questions = append(w.Questions, Question{
			Text:      qj.Text,
			Gold:      gold,
			GoldSig:   Signature(qg),
			Relations: qj.Relations,
			Noisy:     qj.Noisy,
		})
	}

	sb, err := os.ReadFile(filepath.Join(dir, fileSparql))
	if err != nil {
		return nil, err
	}
	for ln, line := range splitLines(string(sb)) {
		q, err := sparql.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("workload: sparql line %d: %w", ln+1, err)
		}
		qg, err := sparql.BuildQueryGraph(q)
		if err != nil {
			return nil, fmt.Errorf("workload: sparql line %d graph: %w", ln+1, err)
		}
		w.Sparql = append(w.Sparql, SparqlEntry{Query: q, Graph: qg, Sig: Signature(qg)})
	}
	return w, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func writeJSON(path string, v interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readJSON(path string, v interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}
