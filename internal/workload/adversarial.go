package workload

// The adversarial planner workload: a join where the default chain order's
// cheap leading bounds are all useless and only the css bound decides pairs.
//
// Every graph on both sides shares one fixed topology (a ring plus
// deterministic chords, every edge labeled "e"), and every uncertain vertex
// carries multiple candidate labels. The certain-graph baseline bounds
// (count, lm, cstar, path-gram, pars, segos) evaluate the query against the
// uncertain graph's certain relaxation (GSig.Relaxed) — which here is all
// wildcards, on a structurally identical graph — so each one computes a lower
// bound of zero and prunes nothing. The css bound reads the candidate label
// sets directly: labels are drawn from per-family disjoint alphabets, so
// cross-family pairs have an empty label matching (λV = 0) and css prunes
// them outright, while same-family pairs survive.
//
// A static chain fronted by the baselines therefore pays every useless bound
// on every pair before reaching the one bound that decides; an adaptive
// chain (internal/plan) observes this in its warm-up epoch and hoists css to
// the front. BenchmarkJoinPlanStatic/Adaptive measure exactly this gap.
//
// Graph i on either side belongs to family i % Families — a contract the
// workload test and the planner benchmarks rely on.

import (
	"fmt"
	"math/rand"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// AdversarialConfig sizes the adversarial planner workload.
type AdversarialConfig struct {
	Seed int64
	// Queries and Uncertain size the two join sides.
	Queries, Uncertain int
	// Families is the number of disjoint label alphabets. Only same-family
	// pairs (1/Families of the cross product) survive the css bound.
	Families int
	// Vertices is the (identical) vertex count of every graph; Chords is how
	// many deterministic long-range edges are added beyond the ring.
	Vertices, Chords int
	// FamilyLabels is the size of each family's private label alphabet.
	FamilyLabels int
	// LabelsPerVertex is the candidate-label count of every uncertain vertex
	// (≥ 2, so every vertex relaxes to a wildcard).
	LabelsPerVertex int
}

// DefaultAdversarialConfig returns a configuration sized for the planner
// benchmarks: large enough that chain order dominates wall time, small
// enough for -count=5 benchmark runs.
func DefaultAdversarialConfig() AdversarialConfig {
	return AdversarialConfig{
		Seed:            11,
		Queries:         64,
		Uncertain:       64,
		Families:        4,
		Vertices:        10,
		Chords:          3,
		FamilyLabels:    6,
		LabelsPerVertex: 3,
	}
}

func advLabel(family, i int) string { return fmt.Sprintf("A%d_%d", family, i) }

func (c AdversarialConfig) sanitise() AdversarialConfig {
	if c.Queries < 1 {
		c.Queries = 1
	}
	if c.Uncertain < 1 {
		c.Uncertain = 1
	}
	if c.Families < 1 {
		c.Families = 1
	}
	if c.Vertices < 4 {
		c.Vertices = 4
	}
	if c.Chords < 0 {
		c.Chords = 0
	}
	if c.LabelsPerVertex < 2 {
		c.LabelsPerVertex = 2
	}
	if c.FamilyLabels < c.LabelsPerVertex {
		c.FamilyLabels = c.LabelsPerVertex
	}
	return c
}

// Adversarial generates the workload. Deterministic in the config — the same
// AdversarialConfig always yields byte-identical workloads.
func Adversarial(cfg AdversarialConfig) ([]*graph.Graph, []*ugraph.Graph) {
	cfg = cfg.sanitise()
	rng := rand.New(rand.NewSource(cfg.Seed))

	d := make([]*graph.Graph, cfg.Queries)
	for i := range d {
		d[i] = advQueryGraph(cfg, i%cfg.Families)
	}
	u := make([]*ugraph.Graph, cfg.Uncertain)
	for i := range u {
		u[i] = advUncertainGraph(rng, cfg, i%cfg.Families)
	}
	return d, u
}

// advEdges returns the shared topology: the ring 0–1–…–n−1–0 plus Chords
// deterministic diameter-spanning chords. Identical for every graph of the
// workload, so every structural bound sees a zero edit distance.
func advEdges(cfg AdversarialConfig) [][2]int {
	n := cfg.Vertices
	edges := make([][2]int, 0, n+cfg.Chords)
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int{v, (v + 1) % n})
	}
	has := func(a, b int) bool {
		for _, e := range edges {
			if (e[0] == a && e[1] == b) || (e[0] == b && e[1] == a) {
				return true
			}
		}
		return false
	}
	for c := 0; c < cfg.Chords; c++ {
		a, b := c, (c+n/2)%n
		if a != b && !has(a, b) {
			edges = append(edges, [2]int{a, b})
		}
	}
	return edges
}

// advQueryGraph labels vertex v with its family's anchor label v %
// FamilyLabels. Anchoring guarantees a perfect vertex-label matching (λV =
// |V|) against any same-family uncertain graph — whose candidate sets always
// contain the anchor — so css passes exactly the same-family pairs.
func advQueryGraph(cfg AdversarialConfig, family int) *graph.Graph {
	g := graph.New(cfg.Vertices)
	for v := 0; v < cfg.Vertices; v++ {
		g.AddVertex(advLabel(family, v%cfg.FamilyLabels))
	}
	for _, e := range advEdges(cfg) {
		g.MustAddEdge(e[0], e[1], "e")
	}
	return g
}

func advUncertainGraph(rng *rand.Rand, cfg AdversarialConfig, family int) *ugraph.Graph {
	u := ugraph.New(cfg.Vertices)
	confs := zipfConfidences(cfg.LabelsPerVertex)
	for v := 0; v < cfg.Vertices; v++ {
		// Every vertex is uncertain: the anchor label first (true label,
		// highest confidence — see advQueryGraph), then LabelsPerVertex−1
		// random distinct alternatives from the family alphabet.
		anchor := v % cfg.FamilyLabels
		labels := []ugraph.Label{{Name: advLabel(family, anchor), P: confs[0]}}
		for _, j := range rng.Perm(cfg.FamilyLabels) {
			if len(labels) == cfg.LabelsPerVertex {
				break
			}
			if j != anchor {
				labels = append(labels, ugraph.Label{Name: advLabel(family, j), P: confs[len(labels)]})
			}
		}
		u.AddVertex(labels...)
	}
	for _, e := range advEdges(cfg) {
		u.MustAddEdge(e[0], e[1], "e")
	}
	return u
}
