package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"simjoin/internal/linker"
	"simjoin/internal/rdf"
)

// KBConfig sizes the synthetic knowledge base.
type KBConfig struct {
	Seed int64
	// EntitiesPerClass is the number of instances generated per class.
	EntitiesPerClass int
	// AmbiguousShare is the fraction of entities whose surface form is
	// shared with other entities (driving entity-linking ambiguity).
	AmbiguousShare float64
	// CandidatesPerAmbiguousSurface is how many entities share one
	// ambiguous surface form (≥ 2).
	CandidatesPerAmbiguousSurface int
	// Domains restricts the generated classes (nil = all); the MM workload
	// uses a music/movie domain.
	Domains []string
}

// DefaultKBConfig returns a laptop-scale configuration.
func DefaultKBConfig() KBConfig {
	return KBConfig{
		Seed:                          1,
		EntitiesPerClass:              40,
		AmbiguousShare:                0.3,
		CandidatesPerAmbiguousSurface: 3,
	}
}

// Entity is one generated instance.
type Entity struct {
	Name    string // canonical KB name, e.g. "Marlon_Vega"
	Class   string
	Surface string // natural-language mention, e.g. "Marlon Vega"
}

// KB bundles the generated knowledge graph with its lexicon and entity
// registry.
type KB struct {
	Store    *rdf.Store
	Lexicon  *linker.Lexicon
	Entities map[string][]Entity // class -> instances
	// Mentions maps each entity name to the surface form questions use for
	// it (a shared, ambiguous surface for a configurable share of entities).
	Mentions map[string]string
	Config   KBConfig
}

var (
	firstNames = []string{"Marlon", "Ada", "Ivy", "Hugo", "Nina", "Omar", "Lena", "Felix",
		"June", "Rex", "Vera", "Otto", "Mira", "Dean", "Zara", "Cole", "Ruth", "Axel", "Iris", "Finn"}
	lastNames = []string{"Vega", "Stone", "Hale", "Frost", "Lane", "Reyes", "Bloom", "Cross",
		"Wolfe", "Hart", "Pike", "Marsh", "Quinn", "Voss", "Tate", "Nash", "Rhodes", "Sharp", "Dune", "Kerr"}
	placeRoots = []string{"Alder", "Birch", "Cedar", "Dover", "Elm", "Fern", "Grove", "Haven",
		"Indigo", "Juniper", "Keystone", "Laurel", "Maple", "Norwood", "Oakum", "Pine", "Quarry", "Ridge"}
	orgAdjectives = []string{"Northern", "Grand", "Royal", "Silver", "Central", "Western",
		"Pacific", "Atlantic", "Summit", "Harbor", "Golden", "Crystal"}
	workAdjectives = []string{"Silent", "Crimson", "Hidden", "Endless", "Broken", "Golden",
		"Midnight", "Distant", "Burning", "Frozen", "Hollow", "Shining"}
	workNouns = []string{"River", "Mirror", "Garden", "Empire", "Voyage", "Harvest",
		"Lantern", "Horizon", "Echo", "Crown", "Compass", "Orchard"}
)

// domainClasses returns the classes a config generates.
func (c KBConfig) domainClasses() []string {
	if len(c.Domains) > 0 {
		return c.Domains
	}
	return []string{
		ClassActor, ClassPolitician, ClassScientist, ClassWriter, ClassMusician, ClassAthlete,
		ClassUniversity, ClassCompany, ClassCity, ClassState,
		ClassFilm, ClassBook, ClassSong, ClassSoftware, ClassParty, ClassTeam,
	}
}

// MusicMovieDomains is the closed domain of the MM workload.
var MusicMovieDomains = []string{
	ClassActor, ClassMusician, ClassFilm, ClassSong, ClassCity, ClassState,
}

// GenerateKB builds the knowledge base, its facts, and the lexicon.
func GenerateKB(cfg KBConfig) *KB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kb := &KB{
		Store:    rdf.NewStore(),
		Lexicon:  linker.NewLexicon(),
		Entities: make(map[string][]Entity),
		Mentions: make(map[string]string),
		Config:   cfg,
	}
	classes := cfg.domainClasses()
	classSet := make(map[string]bool, len(classes))
	for _, c := range classes {
		classSet[c] = true
	}

	// 1. Entities with unique names.
	used := map[string]bool{}
	for _, class := range classes {
		for i := 0; i < cfg.EntitiesPerClass; i++ {
			surface := newSurface(rng, class, used)
			name := strings.ReplaceAll(surface, " ", "_")
			e := Entity{Name: name, Class: class, Surface: surface}
			kb.Entities[class] = append(kb.Entities[class], e)
			kb.Store.MustAdd(name, "type", class)
		}
	}

	// 2. Lexicon: class nouns restricted to the domain.
	for noun, class := range ClassNouns {
		if classSet[class] {
			kb.Lexicon.AddClass(noun, class)
		}
	}

	// 3. Lexicon: entity surfaces. A share of entities is grouped under a
	// shared ambiguous surface with Zipf-ish confidences; everything else
	// links unambiguously. Mentions records the surface questions use for
	// each entity.
	// Shuffle deterministically so ambiguous surface groups span different
	// classes (the paper's "Michael Jordan": NBA player vs professor vs
	// actor) — cross-class ambiguity is what query context can resolve.
	all := kb.allEntities()
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	nAmb := int(float64(len(all)) * cfg.AmbiguousShare)
	k := cfg.CandidatesPerAmbiguousSurface
	if k < 2 {
		k = 2
	}
	confs := zipfConfidences(k)
	grouped := make(map[string]bool)
	for i := 0; i+k <= nAmb; i += k {
		group := all[i : i+k]
		shared := group[0].Surface
		for j, e := range group {
			kb.Lexicon.AddEntity(shared, e.Name, e.Class, confs[j])
			kb.Mentions[e.Name] = shared
			grouped[e.Name] = true
			if j > 0 {
				// Non-owners keep their unique surface too (used when the
				// SPARQL side needs an unambiguous mention).
				kb.Lexicon.AddEntity(e.Surface, e.Name, e.Class, 1.0)
			}
		}
	}
	for _, e := range all {
		if grouped[e.Name] {
			continue
		}
		kb.Lexicon.AddEntity(e.Surface, e.Name, e.Class, 1.0)
		kb.Mentions[e.Name] = e.Surface
	}

	// 4. Lexicon: relation phrases (canonical ones resolve to the gold
	// predicate with confidence 1; noisy ones put a wrong predicate first).
	for _, p := range Schema {
		if !kb.predicateInDomain(&p, classSet) {
			continue
		}
		for _, phrase := range p.Phrases {
			kb.Lexicon.AddRelation(phrase, p.Name, 1.0)
		}
		for _, phrase := range p.InversePhrases {
			kb.Lexicon.AddInverseRelation(phrase, p.Name, 1.0, p.Object)
		}
	}
	for _, np := range NoisyPhrases {
		correct := predicateByName(np.Correct)
		wrong := predicateByName(np.Wrong)
		if correct == nil || wrong == nil ||
			!kb.predicateInDomain(correct, classSet) || !kb.predicateInDomain(wrong, classSet) {
			continue
		}
		kb.Lexicon.AddRelation(np.Phrase, np.Wrong, np.PWrong)
		kb.Lexicon.AddRelation(np.Phrase, np.Correct, 1-np.PWrong)
	}

	// 5. Facts: every applicable predicate links a random subset of
	// subjects to in-domain objects.
	for _, p := range Schema {
		if !kb.predicateInDomain(&p, classSet) {
			continue
		}
		for _, subjClass := range p.Subjects {
			if !classSet[subjClass] && subjClass != "Person" {
				continue
			}
			for _, subj := range kb.instancesOf(subjClass, classSet) {
				// Each subject gets 1-2 facts for this predicate with
				// probability 0.8.
				if rng.Float64() > 0.8 {
					continue
				}
				nFacts := 1 + rng.Intn(2)
				for f := 0; f < nFacts; f++ {
					obj := kb.randomObject(rng, p.Object, classSet)
					if obj == "" || obj == subj.Name {
						continue
					}
					kb.Store.MustAdd(subj.Name, p.Name, obj)
				}
			}
		}
	}
	return kb
}

func (kb *KB) predicateInDomain(p *Predicate, classSet map[string]bool) bool {
	if p.Object != "Person" && !classSet[p.Object] {
		return false
	}
	for _, s := range p.Subjects {
		if classSet[s] || (s == "Person" && kb.anyPersonClass(classSet)) {
			return true
		}
	}
	return false
}

func (kb *KB) anyPersonClass(classSet map[string]bool) bool {
	for _, c := range PersonClasses {
		if classSet[c] {
			return true
		}
	}
	return false
}

// instancesOf resolves a class (or the "Person" umbrella) to entities.
func (kb *KB) instancesOf(class string, classSet map[string]bool) []Entity {
	if class != "Person" {
		return kb.Entities[class]
	}
	var out []Entity
	for _, c := range PersonClasses {
		if classSet[c] {
			out = append(out, kb.Entities[c]...)
		}
	}
	return out
}

func (kb *KB) randomObject(rng *rand.Rand, class string, classSet map[string]bool) string {
	insts := kb.instancesOf(class, classSet)
	if len(insts) == 0 {
		return ""
	}
	return insts[rng.Intn(len(insts))].Name
}

func (kb *KB) allEntities() []Entity {
	var out []Entity
	for _, class := range kb.Config.domainClasses() {
		out = append(out, kb.Entities[class]...)
	}
	return out
}

// RandomEntity returns a random instance of the class (or umbrella class)
// using the supplied RNG.
func (kb *KB) RandomEntity(rng *rand.Rand, class string) (Entity, bool) {
	classSet := map[string]bool{}
	for _, c := range kb.Config.domainClasses() {
		classSet[c] = true
	}
	insts := kb.instancesOf(class, classSet)
	if len(insts) == 0 {
		return Entity{}, false
	}
	return insts[rng.Intn(len(insts))], true
}

func newSurface(rng *rand.Rand, class string, used map[string]bool) string {
	for tries := 0; ; tries++ {
		var s string
		switch class {
		case ClassCity:
			s = placeRoots[rng.Intn(len(placeRoots))] + "ville"
		case ClassState:
			s = placeRoots[rng.Intn(len(placeRoots))] + " State"
		case ClassUniversity:
			s = orgAdjectives[rng.Intn(len(orgAdjectives))] + " " + placeRoots[rng.Intn(len(placeRoots))] + " University"
		case ClassCompany:
			s = orgAdjectives[rng.Intn(len(orgAdjectives))] + " " + workNouns[rng.Intn(len(workNouns))] + " Corp"
		case ClassParty:
			s = orgAdjectives[rng.Intn(len(orgAdjectives))] + " Party"
		case ClassTeam:
			s = placeRoots[rng.Intn(len(placeRoots))] + " " + workNouns[rng.Intn(len(workNouns))] + "s"
		case ClassFilm, ClassBook, ClassSong, ClassSoftware:
			s = "The " + workAdjectives[rng.Intn(len(workAdjectives))] + " " + workNouns[rng.Intn(len(workNouns))]
		default: // people
			s = firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		}
		if tries > 50 {
			s = fmt.Sprintf("%s %d", s, rng.Intn(10000))
		}
		if !used[s] {
			used[s] = true
			return s
		}
	}
}

// zipfConfidences returns k confidences proportional to 1/rank, normalised.
func zipfConfidences(k int) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = 1 / float64(i+1)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
