package workload

import (
	"math"
	"strings"
	"testing"

	"simjoin/internal/nlq"
	"simjoin/internal/sparql"
)

func smallQAConfig() QAConfig {
	cfg := QALD3Config()
	cfg.Questions = 40
	cfg.ExtraQueries = 20
	cfg.KB.EntitiesPerClass = 15
	return cfg
}

func TestGenerateKBInvariants(t *testing.T) {
	kb := GenerateKB(DefaultKBConfig())
	if kb.Store.Len() == 0 {
		t.Fatal("empty KB")
	}
	// Every entity has a type triple and a mention resolving back to it.
	for class, ents := range kb.Entities {
		if len(ents) != kb.Config.EntitiesPerClass {
			t.Errorf("class %s has %d entities, want %d", class, len(ents), kb.Config.EntitiesPerClass)
		}
		for _, e := range ents {
			if !kb.Store.Contains(e.Name, "type", class) {
				t.Errorf("missing type triple for %s", e.Name)
			}
			mention := kb.Mentions[e.Name]
			if mention == "" {
				t.Errorf("no mention for %s", e.Name)
				continue
			}
			cands := kb.Lexicon.LinkEntity(mention)
			found := false
			sum := 0.0
			for _, c := range cands {
				sum += c.P
				if c.Entity == e.Name {
					found = true
				}
			}
			if !found {
				t.Errorf("mention %q does not link to %s (candidates %v)", mention, e.Name, cands)
			}
			if sum > 1+1e-9 {
				t.Errorf("mention %q confidences sum to %v", mention, sum)
			}
		}
	}
}

func TestGenerateKBAmbiguityRate(t *testing.T) {
	kb := GenerateKB(DefaultKBConfig())
	amb := 0
	total := 0
	for _, ents := range kb.Entities {
		for _, e := range ents {
			total++
			if len(kb.Lexicon.LinkEntity(kb.Mentions[e.Name])) > 1 {
				amb++
			}
		}
	}
	rate := float64(amb) / float64(total)
	if rate < 0.15 || rate > 0.45 {
		t.Errorf("ambiguous mention rate = %v, config asked ~0.3", rate)
	}
}

func TestGenerateKBDeterministic(t *testing.T) {
	a := GenerateKB(DefaultKBConfig())
	b := GenerateKB(DefaultKBConfig())
	if a.Store.Len() != b.Store.Len() {
		t.Errorf("non-deterministic KB: %d vs %d triples", a.Store.Len(), b.Store.Len())
	}
}

func TestGenerateQAWorkload(t *testing.T) {
	w, err := GenerateQA(smallQAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Questions) != 40 {
		t.Fatalf("questions = %d", len(w.Questions))
	}
	if len(w.Sparql) == 0 {
		t.Fatal("no SPARQL workload")
	}
	for i, q := range w.Questions {
		if q.Text == "" || q.Gold == nil || q.GoldSig == "" {
			t.Fatalf("question %d incomplete: %+v", i, q)
		}
		// Gold queries must have answers in the KB (grounded intents).
		res, err := sparql.Execute(w.KB.Store, q.Gold, 0)
		if err != nil {
			t.Fatalf("gold query %d: %v", i, err)
		}
		if len(res) == 0 {
			t.Errorf("gold query %d has no answers: %s", i, q.Gold)
		}
		if q.Relations < 1 || q.Relations > 3 {
			t.Errorf("question %d relations = %d", i, q.Relations)
		}
	}
	for i, e := range w.Sparql {
		if e.Graph == nil || e.Sig == "" {
			t.Fatalf("sparql entry %d incomplete", i)
		}
	}
}

func TestQuestionsInterpretable(t *testing.T) {
	w, err := GenerateQA(smallQAConfig())
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, q := range w.Questions {
		uq, err := nlq.Interpret(q.Text, w.KB.Lexicon)
		if err != nil {
			t.Logf("interpret %q: %v", q.Text, err)
			continue
		}
		if uq.Graph.NumVertices() == 0 {
			t.Errorf("empty graph for %q", q.Text)
		}
		ok++
	}
	if rate := float64(ok) / float64(len(w.Questions)); rate < 0.9 {
		t.Errorf("only %v of questions interpretable", rate)
	}
}

func TestInverseQuestionsGenerated(t *testing.T) {
	cfg := QALD3Config()
	cfg.Questions = 120
	cfg.InverseRate = 0.5
	w, err := GenerateQA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inverse := 0
	for _, q := range w.Questions {
		if !strings.HasPrefix(q.Text, "What is ") {
			continue
		}
		inverse++
		// Gold query: concrete subject, variable object, plus the range
		// type constraint on the answer.
		if len(q.Gold.Patterns) != 2 {
			t.Fatalf("inverse gold has %d patterns: %s", len(q.Gold.Patterns), q.Gold)
		}
		p := q.Gold.Patterns[0]
		if p.S.IsVar() || !p.O.IsVar() {
			t.Fatalf("inverse gold direction wrong: %s", q.Gold)
		}
		if tp := q.Gold.Patterns[1]; tp.P.Value != "type" || !tp.S.IsVar() {
			t.Fatalf("inverse gold missing range type pattern: %s", q.Gold)
		}
		if q.Relations != 1 {
			t.Errorf("inverse relation count = %d", q.Relations)
		}
		// The question must interpret and answer over the KB.
		res, err := sparql.Execute(w.KB.Store, q.Gold, 0)
		if err != nil || len(res) == 0 {
			t.Errorf("inverse gold unanswerable: %s (%v)", q.Gold, err)
		}
		if _, err := nlq.Interpret(q.Text, w.KB.Lexicon); err != nil {
			t.Errorf("inverse question uninterpretable: %q (%v)", q.Text, err)
		}
	}
	if inverse < 10 {
		t.Errorf("only %d inverse questions generated", inverse)
	}
}

func TestSignatureEntityBlind(t *testing.T) {
	q1 := sparql.MustBuildQueryGraph(sparql.MustParse(
		`SELECT ?x WHERE { ?x type Actor . ?x birthPlace Alderville . }`))
	q2 := sparql.MustBuildQueryGraph(sparql.MustParse(
		`SELECT ?x WHERE { ?x type Actor . ?x birthPlace Cedarville . }`))
	q3 := sparql.MustBuildQueryGraph(sparql.MustParse(
		`SELECT ?x WHERE { ?x type Politician . ?x birthPlace Alderville . }`))
	if Signature(q1) != Signature(q2) {
		t.Error("entity change altered signature")
	}
	if Signature(q1) == Signature(q3) {
		t.Error("class change did not alter signature")
	}
}

func TestSignatureStructureSensitive(t *testing.T) {
	chain := sparql.MustBuildQueryGraph(sparql.MustParse(
		`SELECT ?x WHERE { ?x spouse ?y . ?y memberOf Party1 . }`))
	star := sparql.MustBuildQueryGraph(sparql.MustParse(
		`SELECT ?x WHERE { ?x spouse ?y . ?x memberOf Party1 . }`))
	if Signature(chain) == Signature(star) {
		t.Error("chain and star share a signature")
	}
}

func TestERGenerator(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	d, u := ER(cfg)
	if len(d) != cfg.Count || len(u) != cfg.Count {
		t.Fatalf("counts: %d/%d", len(d), len(u))
	}
	for i, g := range d {
		if err := g.Validate(); err != nil {
			t.Fatalf("d[%d]: %v", i, err)
		}
		if g.NumVertices() < 2 {
			t.Errorf("d[%d] too small", i)
		}
	}
	totalLabels := 0
	for i, g := range u {
		if err := g.Validate(); err != nil {
			t.Fatalf("u[%d]: %v", i, err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			totalLabels += len(g.Labels(v))
		}
		if len(g.UncertainVertices()) == 0 {
			t.Errorf("u[%d] has no uncertainty", i)
		}
	}
	if totalLabels == 0 {
		t.Fatal("no labels at all")
	}
}

func TestSFPowerLaw(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Vertices = 60
	cfg.Edges = 120
	cfg.Count = 10
	d, _ := SF(cfg)
	// A scale-free graph should have a hub: max degree well above average.
	hubby := 0
	for _, g := range d {
		degs := g.Degrees()
		maxD, sum := 0, 0
		for _, dd := range degs {
			sum += dd
			if dd > maxD {
				maxD = dd
			}
		}
		avg := float64(sum) / float64(len(degs))
		if float64(maxD) > 2.5*avg {
			hubby++
		}
	}
	if hubby < len(d)/2 {
		t.Errorf("only %d/%d SF graphs have hubs", hubby, len(d))
	}
}

func TestAIDSGenerator(t *testing.T) {
	gs := AIDS(DefaultAIDSConfig())
	if len(gs) != 100 {
		t.Fatalf("count = %d", len(gs))
	}
	carbon := 0
	total := 0
	for i, g := range gs {
		if err := g.Validate(); err != nil {
			t.Fatalf("aids[%d]: %v", i, err)
		}
		for _, d := range g.Degrees() {
			if d > 4 {
				t.Errorf("aids[%d] degree %d > 4", i, d)
			}
		}
		// Connectivity: spanning tree guarantees |E| >= |V|-1.
		if g.NumEdges() < g.NumVertices()-1 {
			t.Errorf("aids[%d] disconnected-ish: %d edges, %d vertices", i, g.NumEdges(), g.NumVertices())
		}
		for v := 0; v < g.NumVertices(); v++ {
			total++
			if g.VertexLabel(v) == "C" {
				carbon++
			}
		}
	}
	if r := float64(carbon) / float64(total); math.Abs(r-0.65) > 0.1 {
		t.Errorf("carbon rate = %v, want ~0.65", r)
	}
}

func TestMMDomainRestricted(t *testing.T) {
	cfg := MMConfig()
	cfg.Questions = 20
	cfg.KB.EntitiesPerClass = 10
	cfg.ExtraQueries = 5
	w, err := GenerateQA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, c := range MusicMovieDomains {
		allowed[c] = true
	}
	for _, e := range w.Sparql {
		for _, p := range e.Query.Patterns {
			if p.P.Value == "type" && !allowed[p.O.Value] {
				t.Errorf("out-of-domain class %q in MM workload", p.O.Value)
			}
		}
	}
}
