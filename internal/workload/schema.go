// Package workload generates every dataset of §7.1.1 from scratch — the
// substitution, documented in DESIGN.md, for DBpedia, the DBpedia SPARQL
// log, QALD-3, WebQuestions, the MM search-engine workload, and the AIDS
// graph set, none of which ship with the repository.
//
// A schema-driven synthetic knowledge base stands in for DBpedia; question
// and SPARQL workloads are drawn from shared "intents" over that KB so gold
// pairs and gold answers are known exactly; ER, SF (power-law) and AIDS-like
// generators provide the purely synthetic graph sets used by the efficiency
// experiments.
package workload

// Class names of the synthetic ontology.
const (
	ClassActor      = "Actor"
	ClassPolitician = "Politician"
	ClassScientist  = "Scientist"
	ClassWriter     = "Writer"
	ClassMusician   = "Musician"
	ClassAthlete    = "Athlete"
	ClassUniversity = "University"
	ClassCompany    = "Company"
	ClassCity       = "City"
	ClassState      = "State"
	ClassFilm       = "Film"
	ClassBook       = "Book"
	ClassSong       = "Song"
	ClassSoftware   = "Software"
	ClassParty      = "Party"
	ClassTeam       = "Team"
)

// PersonClasses lists the classes whose instances are people.
var PersonClasses = []string{
	ClassActor, ClassPolitician, ClassScientist, ClassWriter, ClassMusician, ClassAthlete,
}

// Predicate describes one relation of the schema: its gold predicate name,
// the subject classes it applies to, the object class, and the natural
// language phrases that express it. The first phrase of each entry is the
// canonical one; entries in NoisyPhrases are phrases whose top paraphrase
// candidate is a *different* predicate (the ambiguity that separates the
// template system from the direct-translation baselines).
type Predicate struct {
	Name     string
	Subjects []string
	Object   string
	Phrases  []string
	// InversePhrases express the relation with reversed argument order
	// ("the director of <film>"); they render the paper's "What is the X
	// of Y?" question shape (Fig. 10's ruling-party case).
	InversePhrases []string
}

// NoisyPhrase is a relation phrase whose paraphrase distribution puts a
// wrong predicate first.
type NoisyPhrase struct {
	Phrase  string
	Wrong   string  // top candidate (incorrect for the gold predicate)
	Correct string  // the gold predicate, ranked second
	PWrong  float64 // confidence of the wrong candidate
}

// Schema is the fixed ontology of the synthetic knowledge base.
var Schema = []Predicate{
	{Name: "birthPlace", Subjects: PersonClasses, Object: ClassCity,
		Phrases:        []string{"born in", "was born in"},
		InversePhrases: []string{"the birthplace of"}},
	{Name: "livesIn", Subjects: PersonClasses, Object: ClassCity,
		Phrases: []string{"lives in"}},
	{Name: "spouse", Subjects: PersonClasses, Object: "Person",
		Phrases: []string{"married to", "is married to"}},
	{Name: "graduatedFrom", Subjects: PersonClasses, Object: ClassUniversity,
		Phrases:        []string{"graduated from"},
		InversePhrases: []string{"the alma mater of"}},
	{Name: "employedBy", Subjects: PersonClasses, Object: ClassCompany,
		Phrases: []string{"works for", "employed by"}},
	{Name: "memberOf", Subjects: []string{ClassPolitician}, Object: ClassParty,
		Phrases:        []string{"member of", "belongs to"},
		InversePhrases: []string{"the party of", "the ruling party of"}},
	{Name: "playsFor", Subjects: []string{ClassAthlete}, Object: ClassTeam,
		Phrases:        []string{"plays for"},
		InversePhrases: []string{"the team of"}},
	{Name: "director", Subjects: []string{ClassFilm}, Object: ClassActor,
		Phrases:        []string{"directed by", "was directed by"},
		InversePhrases: []string{"the director of"}},
	{Name: "starring", Subjects: []string{ClassFilm}, Object: ClassActor,
		Phrases: []string{"starring"}},
	{Name: "author", Subjects: []string{ClassBook}, Object: ClassWriter,
		Phrases: []string{"written by"}},
	{Name: "composer", Subjects: []string{ClassSong}, Object: ClassMusician,
		Phrases: []string{"composed by"}},
	{Name: "developer", Subjects: []string{ClassSoftware}, Object: ClassCompany,
		Phrases: []string{"developed by"}},
	{Name: "foundationPlace", Subjects: []string{ClassCompany, ClassUniversity}, Object: ClassCity,
		Phrases: []string{"founded in"}},
	{Name: "locatedIn", Subjects: []string{ClassCity}, Object: ClassState,
		Phrases: []string{"located in"}},
}

// NoisyPhrases lists the misleading relation phrases. A question rendered
// with one of these phrases misleads top-1 paraphrase disambiguation, while
// the SimJ-learned templates recover the gold predicate from the SPARQL side
// of the matched pair.
var NoisyPhrases = []NoisyPhrase{
	{Phrase: "studied at", Wrong: "employedBy", Correct: "graduatedFrom", PWrong: 0.55},
	{Phrase: "from", Wrong: "livesIn", Correct: "birthPlace", PWrong: 0.6},
	{Phrase: "partner of", Wrong: "employedBy", Correct: "spouse", PWrong: 0.55},
	{Phrase: "features", Wrong: "director", Correct: "starring", PWrong: 0.5},
	{Phrase: "made by", Wrong: "developer", Correct: "director", PWrong: 0.55},
	{Phrase: "created by", Wrong: "author", Correct: "composer", PWrong: 0.55},
	{Phrase: "wrote", Wrong: "composer", Correct: "author", PWrong: 0.5},
	{Phrase: "based in", Wrong: "foundationPlace", Correct: "locatedIn", PWrong: 0.55},
	{Phrase: "staying in", Wrong: "birthPlace", Correct: "livesIn", PWrong: 0.55},
	{Phrase: "plays in", Wrong: "starring", Correct: "playsFor", PWrong: 0.5},
}

// ClassNouns maps natural-language class nouns to ontology classes.
var ClassNouns = map[string]string{
	"actor": ClassActor, "politician": ClassPolitician,
	"scientist": ClassScientist, "writer": ClassWriter,
	"musician": ClassMusician, "athlete": ClassAthlete,
	"university": ClassUniversity, "company": ClassCompany,
	"city": ClassCity, "state": ClassState,
	"film": ClassFilm, "movie": ClassFilm,
	"book": ClassBook, "song": ClassSong,
	"software": ClassSoftware, "party": ClassParty, "team": ClassTeam,
}

// nounOf returns a canonical class noun for rendering questions.
func nounOf(class string) string {
	for noun, c := range ClassNouns {
		if c == class && noun != "movie" { // prefer "film"
			return noun
		}
	}
	return "thing"
}

// predicateByName returns the schema entry for a predicate name.
func predicateByName(name string) *Predicate {
	for i := range Schema {
		if Schema[i].Name == name {
			return &Schema[i]
		}
	}
	return nil
}
