package workload

import (
	"fmt"
	"math/rand"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// SyntheticConfig sizes the ER/SF graph workloads of §7.1.1. The paper uses
// 100k graphs of ~64 vertices; exact GED at that size is intractable on any
// hardware, so the defaults are scaled down (DESIGN.md) — every knob is a
// parameter so larger runs are a flag away.
type SyntheticConfig struct {
	Seed int64
	// Count is the number of graphs generated per side (D and U).
	Count int
	// Vertices and Edges set the average graph size.
	Vertices, Edges int
	// LabelAlphabet is the number of distinct vertex labels.
	LabelAlphabet int
	// UncertainVertices is how many vertices per uncertain graph carry
	// multiple labels.
	UncertainVertices int
	// LabelsPerVertex is |L(v)| for uncertain vertices (Fig. 14 sweeps it).
	LabelsPerVertex int
	// PerturbEdits is how many random edits separate an uncertain graph
	// from its certain seed (keeps the join non-degenerate).
	PerturbEdits int
}

// DefaultSyntheticConfig returns a configuration small enough for exact
// verification in tests and benches.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Seed:              1,
		Count:             40,
		Vertices:          12,
		Edges:             20,
		LabelAlphabet:     10,
		UncertainVertices: 4,
		LabelsPerVertex:   3,
		PerturbEdits:      2,
	}
}

func synthLabel(i int) string { return fmt.Sprintf("L%d", i) }

// ER generates an Erdős–Rényi-style workload: Count certain graphs with
// uniformly random edges, and Count uncertain graphs derived from perturbed
// copies with label uncertainty injected.
func ER(cfg SyntheticConfig) ([]*graph.Graph, []*ugraph.Graph) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := make([]*graph.Graph, cfg.Count)
	for i := range d {
		d[i] = erGraph(rng, cfg)
	}
	u := deriveUncertain(rng, d, cfg)
	return d, u
}

func erGraph(rng *rand.Rand, cfg SyntheticConfig) *graph.Graph {
	n := jitter(rng, cfg.Vertices)
	m := jitter(rng, cfg.Edges)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(synthLabel(rng.Intn(cfg.LabelAlphabet)))
	}
	for tries := 0; tries < m*4 && g.NumEdges() < m; tries++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || g.HasEdge(a, b) {
			continue
		}
		g.MustAddEdge(a, b, "e")
	}
	return g
}

// SF generates a scale-free workload: vertex degrees follow a power law via
// preferential attachment (the gengraph_win substitute).
func SF(cfg SyntheticConfig) ([]*graph.Graph, []*ugraph.Graph) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := make([]*graph.Graph, cfg.Count)
	for i := range d {
		d[i] = sfGraph(rng, cfg)
	}
	u := deriveUncertain(rng, d, cfg)
	return d, u
}

func sfGraph(rng *rand.Rand, cfg SyntheticConfig) *graph.Graph {
	n := jitter(rng, cfg.Vertices)
	if n < 3 {
		n = 3
	}
	perVertex := cfg.Edges / cfg.Vertices
	if perVertex < 1 {
		perVertex = 1
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(synthLabel(rng.Intn(cfg.LabelAlphabet)))
	}
	deg := make([]int, n)
	total := 0
	// Seed triangle.
	g.MustAddEdge(0, 1, "e")
	g.MustAddEdge(1, 2, "e")
	deg[0], deg[1], deg[2] = 1, 2, 1
	total = 4
	for v := 3; v < n; v++ {
		attached := 0
		for tries := 0; tries < perVertex*6 && attached < perVertex; tries++ {
			// Preferential attachment: pick target ∝ degree (+1 smoothing).
			r := rng.Intn(total + v)
			target := 0
			acc := 0
			for t := 0; t < v; t++ {
				acc += deg[t] + 1
				if r < acc {
					target = t
					break
				}
			}
			if target == v || g.HasEdge(v, target) || g.HasEdge(target, v) {
				continue
			}
			g.MustAddEdge(v, target, "e")
			deg[v]++
			deg[target]++
			total += 2
			attached++
		}
	}
	return g
}

// deriveUncertain builds the uncertain side: each graph is a perturbed copy
// of a random certain graph with label distributions injected at a subset of
// vertices (the true label keeps the highest confidence).
func deriveUncertain(rng *rand.Rand, d []*graph.Graph, cfg SyntheticConfig) []*ugraph.Graph {
	u := make([]*ugraph.Graph, cfg.Count)
	for i := range u {
		base := d[rng.Intn(len(d))].Clone()
		perturb(rng, base, cfg)
		u[i] = injectUncertainty(rng, base, cfg)
	}
	return u
}

func perturb(rng *rand.Rand, g *graph.Graph, cfg SyntheticConfig) {
	for e := 0; e < cfg.PerturbEdits; e++ {
		if g.NumVertices() == 0 {
			return
		}
		v := rng.Intn(g.NumVertices())
		switch rng.Intn(2) {
		case 0: // relabel a vertex
			g.SetVertexLabel(v, synthLabel(rng.Intn(cfg.LabelAlphabet)))
		case 1: // add an edge
			w := rng.Intn(g.NumVertices())
			if v != w && !g.HasEdge(v, w) {
				g.MustAddEdge(v, w, "e")
			}
		}
	}
}

func injectUncertainty(rng *rand.Rand, base *graph.Graph, cfg SyntheticConfig) *ugraph.Graph {
	u := ugraph.New(base.NumVertices())
	uncertain := map[int]bool{}
	for len(uncertain) < cfg.UncertainVertices && len(uncertain) < base.NumVertices() {
		uncertain[rng.Intn(base.NumVertices())] = true
	}
	for v := 0; v < base.NumVertices(); v++ {
		trueLabel := base.VertexLabel(v)
		if !uncertain[v] || cfg.LabelsPerVertex < 2 {
			u.AddVertex(ugraph.Label{Name: trueLabel, P: 1})
			continue
		}
		k := cfg.LabelsPerVertex
		confs := zipfConfidences(k)
		labels := []ugraph.Label{{Name: trueLabel, P: confs[0]}}
		seen := map[string]bool{trueLabel: true}
		for len(labels) < k {
			l := synthLabel(rng.Intn(cfg.LabelAlphabet))
			if seen[l] {
				// Tight alphabets may not have k distinct labels; widen.
				l = fmt.Sprintf("L%d", cfg.LabelAlphabet+rng.Intn(k*2))
				if seen[l] {
					continue
				}
			}
			seen[l] = true
			labels = append(labels, ugraph.Label{Name: l, P: confs[len(labels)]})
		}
		u.AddVertex(labels...)
	}
	for _, e := range base.Edges() {
		u.MustAddEdge(e.From, e.To, e.Label)
	}
	return u
}

// AIDSConfig sizes the AIDS-like molecule graph set of Fig. 15.
type AIDSConfig struct {
	Seed  int64
	Count int
	// MinVertices/MaxVertices bound molecule sizes.
	MinVertices, MaxVertices int
}

// DefaultAIDSConfig returns the scaled-down default.
func DefaultAIDSConfig() AIDSConfig {
	return AIDSConfig{Seed: 5, Count: 100, MinVertices: 8, MaxVertices: 18}
}

// atoms is a skewed label distribution mimicking molecule data.
var atoms = []struct {
	label string
	p     float64
}{
	{"C", 0.65}, {"N", 0.10}, {"O", 0.10}, {"S", 0.05},
	{"P", 0.03}, {"Cl", 0.03}, {"F", 0.02}, {"Br", 0.01}, {"I", 0.005}, {"Si", 0.005},
}

// AIDS generates molecule-like certain graphs: a random spanning tree plus a
// few ring-closing edges, degree ≤ 4, atom-skewed labels.
func AIDS(cfg AIDSConfig) []*graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*graph.Graph, cfg.Count)
	for i := range out {
		n := cfg.MinVertices + rng.Intn(cfg.MaxVertices-cfg.MinVertices+1)
		g := graph.New(n)
		deg := make([]int, n)
		for v := 0; v < n; v++ {
			g.AddVertex(randomAtom(rng))
		}
		// Spanning tree.
		for v := 1; v < n; v++ {
			for {
				t := rng.Intn(v)
				if deg[t] < 4 {
					g.MustAddEdge(t, v, "bond")
					deg[t]++
					deg[v]++
					break
				}
			}
		}
		// Ring closures.
		rings := rng.Intn(n / 4)
		for r := 0; r < rings; r++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b && deg[a] < 4 && deg[b] < 4 && !g.HasEdge(a, b) && !g.HasEdge(b, a) {
				g.MustAddEdge(a, b, "bond")
				deg[a]++
				deg[b]++
			}
		}
		out[i] = g
	}
	return out
}

func randomAtom(rng *rand.Rand) string {
	r := rng.Float64()
	acc := 0.0
	for _, a := range atoms {
		acc += a.p
		if r < acc {
			return a.label
		}
	}
	return "C"
}

func jitter(rng *rand.Rand, mean int) int {
	if mean <= 2 {
		return mean
	}
	v := mean + rng.Intn(mean/2+1) - mean/4
	if v < 2 {
		v = 2
	}
	return v
}
