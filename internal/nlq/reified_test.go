package nlq

import (
	"math"
	"testing"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/sparql"
)

func TestInterpretReified(t *testing.T) {
	lex := testLexicon()
	lex.AddRelation("from", "livesIn", 0.3) // make "from" ambiguous
	uq, err := InterpretReified("Which actor from USA?", lex)
	if err != nil {
		t.Fatal(err)
	}
	g := uq.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertices: ?x, Actor, USA, fict(type), fict(from-preds) = 5.
	if g.NumVertices() != 5 {
		t.Fatalf("|V| = %d, want 5: %v", g.NumVertices(), g)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("|E| = %d, want 4 (two reified relations)", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Label != graph.ReifiedEdgeLabel {
			t.Errorf("edge label %q, want reified marker", e.Label)
		}
	}
	// The relation vertex for "from" keeps the full paraphrase distribution.
	foundAmbiguousRel := false
	for v := 0; v < g.NumVertices(); v++ {
		ls := g.Labels(v)
		if len(ls) > 1 && ls[0].Name == "birthPlace" {
			foundAmbiguousRel = true
			sum := 0.0
			for _, l := range ls {
				sum += l.P
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("relation distribution sums to %v", sum)
			}
		}
	}
	if !foundAmbiguousRel {
		t.Errorf("ambiguous relation phrase lost its paraphrase distribution: %v", g)
	}
	// Fictitious vertices are never slottable.
	for v := 0; v < g.NumVertices(); v++ {
		if uq.VertexArg[v] < 0 {
			if _, ok := uq.SlotSurface(v); ok {
				t.Errorf("fictitious vertex %d slottable", v)
			}
		}
	}
}

func TestReifiedJoinRecoversSecondParaphrase(t *testing.T) {
	lex := testLexicon()
	lex.AddRelation("from", "livesIn", 0.3)
	// In the collapsed model the "from" edge is birthPlace (top-1) and a
	// livesIn query mismatches; in the reified model the livesIn world
	// exists with probability 0.3.
	uq, err := InterpretReified("Which actor from USA?", lex)
	if err != nil {
		t.Fatal(err)
	}
	// SPARQL side: ?x type Actor . ?x livesIn United_States, reified.
	lexAdd := func() {}
	_ = lexAdd
	qg, err := sparql.ParseToGraph(`SELECT ?x WHERE { ?x type Actor . ?x livesIn United_States . }`)
	if err != nil {
		t.Fatal(err)
	}
	q := graph.Reify(qg.Graph)

	// There must exist a possible world of the reified question at GED 0
	// from the reified livesIn query.
	found := 0.0
	uq.Graph.Worlds(func(w *graph.Graph, p float64) bool {
		if d := ged.Distance(q, w); d == 0 {
			found += p
		}
		return true
	})
	if found <= 0 {
		t.Fatal("no zero-distance world for the second paraphrase")
	}
	if math.Abs(found-0.3) > 1e-9 {
		t.Errorf("livesIn world mass = %v, want 0.3", found)
	}
}
