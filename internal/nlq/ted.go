package nlq

import "strings"

// TreeEditDistance computes the Zhang–Shasha edit distance between two
// ordered labeled trees with unit insert/delete/rename costs. Renaming is
// free when the labels are equal (case-insensitive) or when either node is a
// template Slot — slots align with any word, which is exactly how templates
// absorb the entity phrases of a new question (§2.2).
func TreeEditDistance(a, b *DepNode) int {
	ta, tb := flatten(a), flatten(b)
	return zhangShasha(ta, tb)
}

// flatTree is a postorder-numbered tree: labels, leftmost-leaf-descendant
// indices, and keyroots, the inputs of Zhang–Shasha.
type flatTree struct {
	labels   []string
	lld      []int
	keyroots []int
}

func flatten(root *DepNode) flatTree {
	var ft flatTree
	var walk func(n *DepNode) int // returns postorder index of n
	walk = func(n *DepNode) int {
		first := -1
		for _, c := range n.Children {
			ci := walk(c)
			if first < 0 {
				first = ft.lld[ci]
			}
		}
		idx := len(ft.labels)
		ft.labels = append(ft.labels, n.Label)
		if first < 0 {
			ft.lld = append(ft.lld, idx)
		} else {
			ft.lld = append(ft.lld, first)
		}
		return idx
	}
	if root != nil {
		walk(root)
	}
	// Keyroots: nodes with no left sibling on the path (lld differs from the
	// lld of every larger node), i.e. the largest node for each distinct lld.
	largest := map[int]int{}
	for i, l := range ft.lld {
		largest[l] = i
	}
	for _, i := range largest {
		ft.keyroots = append(ft.keyroots, i)
	}
	// Sort keyroots ascending (insertion sort: the sets are tiny).
	for i := 1; i < len(ft.keyroots); i++ {
		for j := i; j > 0 && ft.keyroots[j] < ft.keyroots[j-1]; j-- {
			ft.keyroots[j], ft.keyroots[j-1] = ft.keyroots[j-1], ft.keyroots[j]
		}
	}
	return ft
}

func renameCost(a, b string) int {
	if a == Slot || b == Slot || strings.EqualFold(a, b) {
		return 0
	}
	return 1
}

func zhangShasha(t1, t2 flatTree) int {
	n, m := len(t1.labels), len(t2.labels)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	td := make([][]int, n)
	for i := range td {
		td[i] = make([]int, m)
	}

	fd := make([][]int, n+1)
	for i := range fd {
		fd[i] = make([]int, m+1)
	}

	for _, i := range t1.keyroots {
		for _, j := range t2.keyroots {
			li, lj := t1.lld[i], t2.lld[j]
			fd[li][lj] = 0
			for di := li; di <= i; di++ {
				fd[di+1][lj] = fd[di][lj] + 1
			}
			for dj := lj; dj <= j; dj++ {
				fd[li][dj+1] = fd[li][dj] + 1
			}
			for di := li; di <= i; di++ {
				for dj := lj; dj <= j; dj++ {
					if t1.lld[di] == li && t2.lld[dj] == lj {
						d := fd[di][dj] + renameCost(t1.labels[di], t2.labels[dj])
						if v := fd[di][dj+1] + 1; v < d {
							d = v
						}
						if v := fd[di+1][dj] + 1; v < d {
							d = v
						}
						fd[di+1][dj+1] = d
						td[di][dj] = d
					} else {
						d := fd[t1.lld[di]][t2.lld[dj]] + td[di][dj]
						if v := fd[di][dj+1] + 1; v < d {
							d = v
						}
						if v := fd[di+1][dj] + 1; v < d {
							d = v
						}
						fd[di+1][dj+1] = d
					}
				}
			}
		}
	}
	return td[n-1][m-1]
}
