package nlq

import (
	"math"
	"strings"
	"testing"

	"simjoin/internal/linker"
)

// testLexicon mirrors the paper's running examples.
func testLexicon() *linker.Lexicon {
	lex := linker.NewLexicon()
	lex.AddEntity("Michael Jordan", "Michael_Jordan_NBA", "NBA_Player", 0.6)
	lex.AddEntity("Michael Jordan", "Michael_Jordan_Prof", "Professor", 0.3)
	lex.AddEntity("Michael Jordan", "Michael_Jordan_Actor", "Actor", 0.1)
	lex.AddEntity("CIT", "California_Institute_of_Technology", "University", 0.8)
	lex.AddEntity("CIT", "CIT_Group", "Company", 0.2)
	lex.AddEntity("USA", "United_States", "Country", 1.0)
	lex.AddEntity("NY", "New_York", "State", 0.7)
	lex.AddEntity("NY", "New_York_City", "City", 0.3)
	lex.AddEntity("Harvard University", "Harvard_University", "University", 1.0)
	lex.AddRelation("graduated from", "graduatedFrom", 1.0)
	lex.AddRelation("married to", "spouse", 0.9)
	lex.AddRelation("born in", "birthPlace", 1.0)
	lex.AddRelation("from", "birthPlace", 0.7)
	lex.AddRelation("directed by", "director", 1.0)
	lex.AddClass("politician", "Politician")
	lex.AddClass("actor", "Actor")
	lex.AddClass("city", "City")
	lex.AddClass("movie", "Film")
	return lex
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Which politician graduated from CIT?")
	want := []string{"Which", "politician", "graduated", "from", "CIT"}
	if len(toks) != len(want) {
		t.Fatalf("Tokenize = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", toks, want)
		}
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("empty input tokenized to %v", got)
	}
	if got := Tokenize("a,b.c"); len(got) != 3 {
		t.Errorf("punctuation splitting failed: %v", got)
	}
}

func TestExtractPaperQuestion(t *testing.T) {
	sg, err := Extract("Which politician graduated from CIT?", testLexicon())
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Args) != 2 {
		t.Fatalf("Args = %+v, want 2", sg.Args)
	}
	if sg.Args[0].Kind != ArgVariable || sg.Args[0].Class != "Politician" {
		t.Errorf("arg0 = %+v", sg.Args[0])
	}
	if sg.Args[1].Kind != ArgEntity || len(sg.Args[1].Candidates) != 2 {
		t.Errorf("arg1 = %+v", sg.Args[1])
	}
	if len(sg.Rels) != 1 || sg.Rels[0].Candidates[0].Predicate != "graduatedFrom" {
		t.Fatalf("Rels = %+v", sg.Rels)
	}
	if sg.Rels[0].Arg1 != 0 || sg.Rels[0].Arg2 != 1 {
		t.Errorf("relation endpoints = %d,%d", sg.Rels[0].Arg1, sg.Rels[0].Arg2)
	}
}

func TestExtractComplexChain(t *testing.T) {
	// The paper's flagship example: chained and coordinated relations.
	sg, err := Extract("Which actor from USA is married to Michael Jordan born in a city of NY?", testLexicon())
	if err != nil {
		t.Fatal(err)
	}
	// Args: which-actor var, USA, Michael Jordan, city (class), NY.
	if len(sg.Args) != 5 {
		t.Fatalf("Args = %d: %+v", len(sg.Args), sg.Args)
	}
	if len(sg.Rels) < 3 {
		t.Fatalf("Rels = %+v, want >= 3 (from, married to, born in)", sg.Rels)
	}
	// born in must chain off Michael Jordan, not the root variable.
	for _, r := range sg.Rels {
		if r.Phrase == "born in" && sg.Args[r.Arg1].Surface != "Michael Jordan" {
			t.Errorf("born in attaches to %q, want Michael Jordan", sg.Args[r.Arg1].Surface)
		}
	}
}

func TestExtractTrailingRelation(t *testing.T) {
	lex := testLexicon()
	lex.AddRelation("born", "birthPlace", 1.0)
	sg, err := Extract("Where was Michael Jordan born?", lex)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Rels) != 1 {
		t.Fatalf("Rels = %+v", sg.Rels)
	}
	r := sg.Rels[0]
	if sg.Args[r.Arg1].Surface != "Michael Jordan" || sg.Args[r.Arg2].Kind != ArgVariable {
		t.Errorf("trailing relation endpoints wrong: %+v / %+v", sg.Args[r.Arg1], sg.Args[r.Arg2])
	}
}

func TestExtractInverseRelation(t *testing.T) {
	lex := testLexicon()
	lex.AddEntity("Lisbon", "Lisbon", "City", 1.0)
	lex.AddInverseRelation("the ruling party in", "leaderParty", 1.0, "Party")
	sg, err := Extract("What is the ruling party in Lisbon?", lex)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Rels) != 1 {
		t.Fatalf("Rels = %+v", sg.Rels)
	}
	r := sg.Rels[0]
	// Inverse: the entity is the SUBJECT, the variable the OBJECT.
	if sg.Args[r.Arg1].Surface != "Lisbon" {
		t.Errorf("arg1 = %+v, want Lisbon", sg.Args[r.Arg1])
	}
	if sg.Args[r.Arg2].Kind != ArgVariable {
		t.Errorf("arg2 = %+v, want variable", sg.Args[r.Arg2])
	}
	if sg.Args[r.Arg2].Class != "Party" {
		t.Errorf("answer variable not typed with the range: %+v", sg.Args[r.Arg2])
	}
	if r.Candidates[0].Predicate != "leaderParty" {
		t.Errorf("predicate = %v", r.Candidates[0])
	}
	// The uncertain graph's edge must run entity -> variable.
	uq, err := sg.ToUncertain()
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	for _, e := range uq.Graph.Edges() {
		if e.Label == "leaderParty" {
			from := uq.Graph.Labels(e.From)[0].Name
			to := uq.Graph.Labels(e.To)[0].Name
			ok = from == "Lisbon" && graphIsVar(to)
		}
	}
	if !ok {
		t.Errorf("edge direction wrong: %v", uq.Graph)
	}
}

func graphIsVar(label string) bool { return len(label) > 0 && label[0] == '?' }

func TestExtractErrors(t *testing.T) {
	lex := testLexicon()
	if _, err := Extract("CIT graduated from", lex); err == nil {
		t.Error("relation without right argument and without variable accepted")
	}
	if _, err := Extract("Hello world", lex); err == nil {
		t.Error("question without relations accepted")
	}
	if _, err := Extract("graduated from CIT", lex); err == nil {
		t.Error("relation without left argument accepted")
	}
}

func TestToUncertain(t *testing.T) {
	uq, err := Interpret("Which politician graduated from CIT?", testLexicon())
	if err != nil {
		t.Fatal(err)
	}
	g := uq.Graph
	// ?x1, Politician class vertex, CIT uncertain vertex.
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("|V|=%d |E|=%d, want 3/2: %v", g.NumVertices(), g.NumEdges(), g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The CIT vertex carries two entity candidates.
	var citLabels int
	for v := 0; v < g.NumVertices(); v++ {
		if len(g.Labels(v)) == 2 {
			citLabels++
			if g.Labels(v)[0].Name != "California_Institute_of_Technology" ||
				math.Abs(g.Labels(v)[0].P-0.8) > 1e-9 {
				t.Errorf("CIT labels = %v", g.Labels(v))
			}
		}
	}
	if citLabels != 1 {
		t.Fatalf("expected exactly one ambiguous vertex, got %d", citLabels)
	}
	if n, _ := g.WorldCount(); n != 2 {
		t.Errorf("WorldCount = %d, want 2", n)
	}
	// Provenance: every vertex maps to an argument or -1.
	if len(uq.VertexArg) != g.NumVertices() {
		t.Fatalf("VertexArg length %d != |V| %d", len(uq.VertexArg), g.NumVertices())
	}
}

func TestToUncertainComplexWorldCount(t *testing.T) {
	uq, err := Interpret("Which actor from USA is married to Michael Jordan born in a city of NY?", testLexicon())
	if err != nil {
		t.Fatal(err)
	}
	// Michael Jordan has 3 candidates, NY has 2 -> 6 worlds.
	if n, _ := uq.Graph.WorldCount(); n != 6 {
		t.Fatalf("WorldCount = %d, want 6: %v", n, uq.Graph)
	}
}

func TestBuildDepTreePaperExample(t *testing.T) {
	lex := testLexicon()
	lex.AddEntity("CMU", "Carnegie_Mellon_University", "University", 1.0)
	lex.AddClass("physicist", "Physicist")
	q := BuildDepTree("Which physicist graduated from CMU?", lex)
	tmpl := BuildDepTree("Which <___> graduated from <___>?", nil)
	if q == nil || tmpl == nil {
		t.Fatal("nil trees")
	}
	// The trees align perfectly through slots: distance 0.
	if d := TreeEditDistance(q, tmpl); d != 0 {
		t.Fatalf("TED = %d, want 0\nq=%s\ntmpl=%s", d, q, tmpl)
	}
}

func TestTreeEditDistanceBasics(t *testing.T) {
	leaf := func(l string) *DepNode { return &DepNode{Label: l} }
	node := func(l string, cs ...*DepNode) *DepNode { return &DepNode{Label: l, Children: cs} }

	a := node("root", leaf("x"), leaf("y"))
	if d := TreeEditDistance(a, a); d != 0 {
		t.Errorf("TED(a,a) = %d", d)
	}
	b := node("root", leaf("x"), leaf("z"))
	if d := TreeEditDistance(a, b); d != 1 {
		t.Errorf("rename TED = %d, want 1", d)
	}
	c := node("root", leaf("x"))
	if d := TreeEditDistance(a, c); d != 1 {
		t.Errorf("delete TED = %d, want 1", d)
	}
	if d := TreeEditDistance(a, nil); d != 3 {
		t.Errorf("TED(a,nil) = %d, want 3", d)
	}
	if d := TreeEditDistance(nil, nil); d != 0 {
		t.Errorf("TED(nil,nil) = %d, want 0", d)
	}
	slotted := node("root", leaf(Slot), leaf(Slot))
	if d := TreeEditDistance(a, slotted); d != 0 {
		t.Errorf("slot TED = %d, want 0", d)
	}
	// Deeper structural change.
	deep := node("root", node("x", leaf("y")))
	if d := TreeEditDistance(a, deep); d == 0 {
		t.Error("structural difference not detected")
	}
}

func TestTreeEditDistanceSymmetry(t *testing.T) {
	lex := testLexicon()
	t1 := BuildDepTree("Which politician graduated from CIT?", lex)
	t2 := BuildDepTree("Which actor is married to Michael Jordan?", lex)
	if d1, d2 := TreeEditDistance(t1, t2), TreeEditDistance(t2, t1); d1 != d2 {
		t.Errorf("asymmetric TED: %d vs %d", d1, d2)
	}
}

func TestDepTreeDeterministic(t *testing.T) {
	lex := testLexicon()
	a := BuildDepTree("Which politician graduated from CIT?", lex)
	b := BuildDepTree("Which politician graduated from CIT?", lex)
	if a.String() != b.String() {
		t.Errorf("non-deterministic trees: %s vs %s", a, b)
	}
	if !strings.Contains(a.String(), "politician") {
		t.Errorf("tree misses argument: %s", a)
	}
}

func TestDifferentStructuresScoreWorse(t *testing.T) {
	lex := testLexicon()
	q := BuildDepTree("Which politician graduated from CIT?", lex)
	good := BuildDepTree("Which <___> graduated from <___>?", nil)
	bad := BuildDepTree("Give me all <___> directed by <___>.", nil)
	if TreeEditDistance(q, good) >= TreeEditDistance(q, bad) {
		t.Errorf("matching template does not score better: good=%d bad=%d (q=%s good=%s bad=%s)",
			TreeEditDistance(q, good), TreeEditDistance(q, bad), q, good, bad)
	}
}
