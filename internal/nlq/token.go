// Package nlq implements the natural-language side of the pipeline: the
// tokenizer, the lexicon-driven semantic-relation extractor that builds
// semantic query graphs (Def. 1, via the approach of gAnswer [33]), the
// translation into uncertain graphs (§2.1 Step 1), and the syntactic
// dependency trees plus tree edit distance used to match templates to new
// questions (§2.2, Fig. 5).
//
// Go has no production NLP stack; per DESIGN.md the parser and linker are
// simulated by deterministic lexicon-driven components that emit the same
// artifacts the paper consumes (semantic query graphs with per-label
// confidences).
package nlq

import "strings"

// Tokenize splits a question into word tokens, stripping punctuation but
// preserving case (entity detection is case-insensitive but surfaces keep
// their original text).
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			flush()
		case r == '?' || r == '.' || r == ',' || r == '!' || r == ';' || r == ':' || r == '"' || r == '(' || r == ')':
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

// stopwords are skipped during argument/relation scanning.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "is": true, "are": true,
	"was": true, "were": true, "been": true, "be": true, "has": true,
	"have": true, "do": true, "does": true, "did": true, "to": true,
	"in": true, "by": true, "me": true, "all": true, "give": true,
	"list": true, "show": true, "and": true, "that": true, "it": true,
	"there": true, "their": true, "his": true, "her": true,
}

// whWords introduce variables.
var whWords = map[string]bool{
	"which": true, "what": true, "who": true, "whom": true, "where": true,
}

// IsStopword reports whether a token is skipped during extraction.
func IsStopword(tok string) bool { return stopwords[strings.ToLower(tok)] }

// IsWhWord reports whether a token introduces a variable.
func IsWhWord(tok string) bool { return whWords[strings.ToLower(tok)] }
