package nlq

import (
	"fmt"
	"strings"

	"simjoin/internal/linker"
)

// ArgKind classifies semantic-graph arguments.
type ArgKind int

const (
	// ArgVariable is a wh-phrase ("which actor", "who").
	ArgVariable ArgKind = iota
	// ArgEntity is an entity mention with linking candidates.
	ArgEntity
	// ArgClass is a bare class noun ("a city"), treated as an anonymous
	// variable constrained to the class.
	ArgClass
)

// Argument is one vertex of the semantic query graph.
type Argument struct {
	Kind ArgKind
	// Surface is the original question text of the argument.
	Surface string
	// Class is the ontology class for variables introduced by
	// "which <class>" and for bare class nouns.
	Class string
	// Candidates holds the entity-linking candidates for ArgEntity.
	Candidates []linker.EntityCandidate
	// Var is the assigned variable name ("?x1", ...).
	Var string
}

// Relation is one edge of the semantic query graph: a relation phrase with
// its two argument indices and predicate candidates.
type Relation struct {
	Phrase     string
	Arg1, Arg2 int
	Candidates []linker.PredicateCandidate
}

// SemanticGraph is the semantic query graph QS of Def. 1.
type SemanticGraph struct {
	Question string
	Args     []Argument
	Rels     []Relation
}

// Extract builds the semantic query graph of a question with the
// lexicon-driven scanner:
//
//   - wh-word (+ optional class noun) → variable argument,
//   - longest-match entity surface forms → entity arguments,
//   - article + class noun → anonymous class argument,
//   - longest-match relation phrases → relations whose arg1 is the nearest
//     preceding argument (the root variable after a coordinating "and") and
//     whose arg2 is the next argument.
//
// It returns an error when no variable is found, when a relation lacks an
// argument on either side, or when no relation is recognised.
func Extract(question string, lex *linker.Lexicon) (*SemanticGraph, error) {
	toks := Tokenize(question)
	sg := &SemanticGraph{Question: question}

	type pendingRel struct {
		phrase string
		cands  []linker.PredicateCandidate
		arg1   int
	}
	var pending []pendingRel // relations still missing arg2
	lastArg := -1
	afterAnd := false
	rootVar := -1

	addArg := func(a Argument) int {
		// Merge with an identical earlier argument (same surface), so that
		// repeated mentions share a vertex.
		for i := range sg.Args {
			if sg.Args[i].Kind == a.Kind && strings.EqualFold(sg.Args[i].Surface, a.Surface) && a.Kind == ArgEntity {
				return i
			}
		}
		if a.Kind == ArgVariable || a.Kind == ArgClass {
			a.Var = fmt.Sprintf("?x%d", 1+countVars(sg.Args))
		}
		sg.Args = append(sg.Args, a)
		return len(sg.Args) - 1
	}

	addRel := func(phrase string, cands []linker.PredicateCandidate, arg1, arg2 int) {
		// Inverse phrases ("the capital of X") reverse the natural-language
		// argument order relative to the predicate's subject/object order,
		// and type the answer variable with the predicate's range when the
		// lexicon knows it.
		if len(cands) > 0 && cands[0].Inverse {
			arg1, arg2 = arg2, arg1
			if r := cands[0].Range; r != "" {
				if a := &sg.Args[arg2]; (a.Kind == ArgVariable || a.Kind == ArgClass) && a.Class == "" {
					a.Class = r
				}
			}
		}
		sg.Rels = append(sg.Rels, Relation{Phrase: phrase, Arg1: arg1, Arg2: arg2, Candidates: cands})
	}

	resolveArg2 := func(idx int) {
		for _, p := range pending {
			addRel(p.phrase, p.cands, p.arg1, idx)
		}
		pending = pending[:0]
	}

	i := 0
	for i < len(toks) {
		tok := toks[i]
		low := strings.ToLower(tok)

		if low == "and" {
			afterAnd = true
			i++
			continue
		}

		// Wh-phrase, optionally followed by a class noun.
		if IsWhWord(low) {
			a := Argument{Kind: ArgVariable, Surface: tok}
			if i+1 < len(toks) {
				if class, ok := lex.LookupClass(toks[i+1]); ok {
					a.Class = class
					a.Surface = tok + " " + toks[i+1]
					i++
				}
			}
			idx := addArg(a)
			if rootVar < 0 {
				rootVar = idx
			}
			resolveArg2(idx)
			lastArg = idx
			i++
			continue
		}

		// Entity mention (longest match).
		if cands, n := lex.MatchEntity(toks, i); n > 0 {
			idx := addArg(Argument{
				Kind:       ArgEntity,
				Surface:    strings.Join(toks[i:i+n], " "),
				Candidates: cands,
			})
			resolveArg2(idx)
			lastArg = idx
			i += n
			continue
		}

		// Relation phrase (longest match). Checked after entities so that
		// surfaces shared between the two lexicons resolve as entities.
		if cands, phrase, n := lex.MatchRelation(toks, i); n > 0 {
			arg1 := lastArg
			if afterAnd && rootVar >= 0 {
				arg1 = rootVar
			}
			afterAnd = false
			if arg1 < 0 {
				return nil, fmt.Errorf("nlq: relation %q has no left argument in %q", phrase, question)
			}
			pending = append(pending, pendingRel{phrase: phrase, cands: cands, arg1: arg1})
			i += n
			continue
		}

		// Bare class noun ("movies", "a city").
		if class, ok := lex.LookupClass(low); ok && !IsStopword(low) {
			idx := addArg(Argument{Kind: ArgClass, Surface: tok, Class: class})
			if rootVar < 0 {
				rootVar = idx
			}
			resolveArg2(idx)
			lastArg = idx
			i++
			continue
		}

		i++ // stopword or unknown token
	}

	if len(pending) > 0 {
		// A trailing relation with no right argument attaches to the root
		// variable if that is not already its left argument ("Where was X
		// born?" → born(X, ?where)).
		for _, p := range pending {
			if rootVar >= 0 && rootVar != p.arg1 {
				addRel(p.phrase, p.cands, p.arg1, rootVar)
			} else {
				return nil, fmt.Errorf("nlq: relation %q has no right argument in %q", p.phrase, question)
			}
		}
	}
	if len(sg.Rels) == 0 {
		return nil, fmt.Errorf("nlq: no relation recognised in %q", question)
	}
	hasVar := false
	for _, a := range sg.Args {
		if a.Kind == ArgVariable || a.Kind == ArgClass {
			hasVar = true
		}
	}
	if !hasVar {
		return nil, fmt.Errorf("nlq: no variable found in %q", question)
	}
	return sg, nil
}

func countVars(args []Argument) int {
	n := 0
	for _, a := range args {
		if a.Kind == ArgVariable || a.Kind == ArgClass {
			n++
		}
	}
	return n
}
