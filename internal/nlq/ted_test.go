package nlq

import (
	"math/rand"
	"testing"
)

// randomTree builds a random ordered labeled tree with n nodes.
func randomTree(rng *rand.Rand, n int, labels []string) *DepNode {
	if n <= 0 {
		return nil
	}
	nodes := make([]*DepNode, n)
	for i := range nodes {
		nodes[i] = &DepNode{Label: labels[rng.Intn(len(labels))]}
	}
	// Attach each node (except the root) to a random earlier node, which
	// keeps children ordered by creation.
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(i)]
		p.Children = append(p.Children, nodes[i])
	}
	return nodes[0]
}

// bruteTED computes tree edit distance by exhaustive recursion on forests —
// exponential, usable only as a tiny-input oracle.
func bruteTED(f1, f2 []*DepNode) int {
	if len(f1) == 0 && len(f2) == 0 {
		return 0
	}
	if len(f1) == 0 {
		return forestSize(f2)
	}
	if len(f2) == 0 {
		return forestSize(f1)
	}
	a, b := f1[len(f1)-1], f2[len(f2)-1]
	restA := append(append([]*DepNode{}, f1[:len(f1)-1]...), a.Children...)
	restB := append(append([]*DepNode{}, f2[:len(f2)-1]...), b.Children...)

	del := bruteTED(restA, f2) + 1
	ins := bruteTED(f1, restB) + 1
	match := bruteTED(f1[:len(f1)-1], f2[:len(f2)-1]) +
		bruteTED(a.Children, b.Children) + renameCost(a.Label, b.Label)

	best := del
	if ins < best {
		best = ins
	}
	if match < best {
		best = match
	}
	return best
}

func forestSize(f []*DepNode) int {
	s := 0
	for _, n := range f {
		s += n.Size()
	}
	return s
}

func TestTEDAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	labels := []string{"a", "b", "c", Slot}
	for i := 0; i < 150; i++ {
		t1 := randomTree(rng, 1+rng.Intn(5), labels)
		t2 := randomTree(rng, 1+rng.Intn(5), labels)
		want := bruteTED([]*DepNode{t1}, []*DepNode{t2})
		if got := TreeEditDistance(t1, t2); got != want {
			t.Fatalf("iter %d: ZS=%d brute=%d\nt1=%s\nt2=%s", i, got, want, t1, t2)
		}
	}
}

func TestTEDMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	labels := []string{"x", "y", "z"}
	for i := 0; i < 60; i++ {
		a := randomTree(rng, 1+rng.Intn(6), labels)
		b := randomTree(rng, 1+rng.Intn(6), labels)
		c := randomTree(rng, 1+rng.Intn(6), labels)
		dab, dba := TreeEditDistance(a, b), TreeEditDistance(b, a)
		if dab != dba {
			t.Fatalf("asymmetric: %d vs %d", dab, dba)
		}
		if TreeEditDistance(a, a) != 0 {
			t.Fatal("d(a,a) != 0")
		}
		if dac, dbc := TreeEditDistance(a, c), TreeEditDistance(b, c); dac > dab+dbc {
			t.Fatalf("triangle violated: %d > %d + %d", dac, dab, dbc)
		}
	}
}
