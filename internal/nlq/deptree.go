package nlq

import (
	"strings"

	"simjoin/internal/linker"
)

// Slot is the token representing a template slot in natural-language
// template text ("Which <___> graduated from <___>?").
const Slot = "<___>"

// DepNode is one node of a syntactic dependency tree. Children are ordered
// by their position in the sentence.
type DepNode struct {
	Label    string
	Children []*DepNode
}

// Size returns the number of nodes in the subtree.
func (n *DepNode) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// String renders the tree in a compact bracket form.
func (n *DepNode) String() string {
	if n == nil {
		return "()"
	}
	if len(n.Children) == 0 {
		return n.Label
	}
	var b strings.Builder
	b.WriteString(n.Label)
	b.WriteString("(")
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(")")
	return b.String()
}

// BuildDepTree parses a question (or the natural-language part of a
// template) into a dependency tree with the deterministic heuristic grammar
// used throughout the pipeline, producing trees of the Fig. 5 shape:
//
//   - the head word of the first relation phrase is the root;
//   - the preceding argument (entity/class noun/slot) is an nsubj-style
//     child, carrying its wh-determiner as a child;
//   - prepositions and subsequent arguments hang off the root in order;
//   - further relation phrases become children of the root with their
//     following arguments below them.
//
// Multi-word entity mentions are collapsed into a single node when a lexicon
// is supplied. Because questions and templates run through the same
// function, tree edit distance between their trees measures their true
// syntactic divergence.
func BuildDepTree(text string, lex *linker.Lexicon) *DepNode {
	toks := Tokenize(text)
	type unit struct {
		label string
		kind  int // 0 plain, 1 argument, 2 relation head, 3 wh
	}
	var units []unit
	i := 0
	for i < len(toks) {
		tok := toks[i]
		low := strings.ToLower(tok)
		switch {
		case tok == Slot || tok == "<_>" || tok == "<__>":
			units = append(units, unit{Slot, 1})
			i++
		case IsWhWord(low):
			units = append(units, unit{low, 3})
			i++
		case lex != nil:
			if _, n := lex.MatchEntity(toks, i); n > 0 {
				units = append(units, unit{strings.Join(toks[i:i+n], " "), 1})
				i += n
				continue
			}
			if _, phrase, n := lex.MatchRelation(toks, i); n > 0 {
				// Classify each word of the phrase exactly like the
				// lexicon-free path does, so that questions and template
				// texts produce structurally identical trees.
				for _, w := range strings.Fields(phrase) {
					switch {
					case IsStopword(w):
					case verbLike(w):
						units = append(units, unit{w, 2})
					default:
						units = append(units, unit{w, 0})
					}
				}
				i += n
				continue
			}
			if _, ok := lex.LookupClass(low); ok {
				units = append(units, unit{low, 1})
				i++
				continue
			}
			if !IsStopword(low) {
				units = append(units, unit{low, 0})
			}
			i++
		default:
			switch {
			case IsStopword(low):
			case verbLike(low):
				units = append(units, unit{low, 2})
			default:
				units = append(units, unit{low, 0})
			}
			i++
		}
	}

	// Assemble the tree.
	var root *DepNode
	var pendingWh *DepNode
	var preArgs []*DepNode
	attach := root
	for _, u := range units {
		switch u.kind {
		case 3:
			pendingWh = &DepNode{Label: u.label}
		case 1, 0:
			n := &DepNode{Label: u.label}
			if pendingWh != nil {
				n.Children = append(n.Children, pendingWh)
				pendingWh = nil
			}
			if root == nil {
				preArgs = append(preArgs, n)
			} else if attach != nil {
				attach.Children = append(attach.Children, n)
				attach = root
			}
		case 2:
			n := &DepNode{Label: u.label}
			if root == nil {
				root = n
				root.Children = append(preArgs, root.Children...)
				preArgs = nil
				if pendingWh != nil {
					root.Children = append(root.Children, pendingWh)
					pendingWh = nil
				}
				attach = root
			} else {
				root.Children = append(root.Children, n)
				attach = n
			}
		}
	}
	if root == nil {
		// No relation head found: chain the arguments under a neutral root.
		root = &DepNode{Label: "q"}
		root.Children = preArgs
		if pendingWh != nil {
			root.Children = append(root.Children, pendingWh)
		}
	}
	return root
}

// verbLike is a fallback classifier for relation heads when no lexicon is
// available (template texts store their own relation words).
func verbLike(w string) bool {
	if strings.HasSuffix(w, "ed") || strings.HasSuffix(w, "es") {
		return true
	}
	switch w {
	case "born", "from", "wrote", "won", "stars", "directed", "married":
		return true
	}
	return false
}
