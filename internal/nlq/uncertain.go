package nlq

import (
	"fmt"
	"strings"

	"simjoin/internal/graph"
	"simjoin/internal/linker"
	"simjoin/internal/ugraph"
)

// VertexOrigin classifies the provenance of an uncertain-graph vertex.
type VertexOrigin int

const (
	// OriginVariable marks a vertex standing for a wh-phrase variable.
	OriginVariable VertexOrigin = iota
	// OriginEntity marks a vertex carrying entity-linking candidates.
	OriginEntity
	// OriginClass marks a class vertex synthesised for a "which <class>"
	// phrase or a bare class noun.
	OriginClass
)

// UncertainQuestion bundles the uncertain graph derived from a question with
// the provenance needed later for template generation: which graph vertex
// came from which semantic argument.
type UncertainQuestion struct {
	// Graph is the uncertain graph g joined against SPARQL query graphs.
	Graph *ugraph.Graph
	// Sem is the source semantic query graph.
	Sem *SemanticGraph
	// VertexArg maps graph vertex index to the index of the originating
	// argument in Sem.Args (class vertices point at the argument whose
	// class noun produced them).
	VertexArg []int
	// VertexOrigin classifies each graph vertex.
	VertexOrigin []VertexOrigin
}

// SlotSurface returns the question phrase a slotted vertex stands for: the
// full mention for entity vertices and the class noun for class vertices
// ("which politician" → "politician"). The boolean is false for variable
// vertices, which are never slotted.
func (uq *UncertainQuestion) SlotSurface(vertex int) (string, bool) {
	if uq.VertexArg[vertex] < 0 {
		return "", false // synthesised (fictitious) vertex
	}
	arg := uq.Sem.Args[uq.VertexArg[vertex]]
	switch uq.VertexOrigin[vertex] {
	case OriginEntity:
		return arg.Surface, true
	case OriginClass:
		fields := strings.Fields(arg.Surface)
		return fields[len(fields)-1], true
	default:
		return "", false
	}
}

// ToUncertain converts a semantic query graph into the paper's uncertain
// graph model (§2.1 Step 1, Figs. 2–4):
//
//   - variable and class arguments become wildcard vertices with a certain
//     "type" edge to a class vertex when a class is known;
//   - entity arguments become a single vertex whose candidate labels are the
//     linked entity names with their confidences;
//   - relations become edges labeled with the top-confidence predicate
//     (edge-label uncertainty is not modelled in SimJ, per §3.1.1).
func (sg *SemanticGraph) ToUncertain() (*UncertainQuestion, error) {
	uq := &UncertainQuestion{Graph: ugraph.New(len(sg.Args) * 2), Sem: sg}
	argVertex := make([]int, len(sg.Args))

	for i, a := range sg.Args {
		switch a.Kind {
		case ArgVariable, ArgClass:
			v := uq.Graph.AddVertex(ugraph.Label{Name: a.Var, P: 1})
			uq.VertexArg = append(uq.VertexArg, i)
			uq.VertexOrigin = append(uq.VertexOrigin, OriginVariable)
			argVertex[i] = v
			if a.Class != "" {
				cv := uq.Graph.AddVertex(ugraph.Label{Name: a.Class, P: 1})
				uq.VertexArg = append(uq.VertexArg, i)
				uq.VertexOrigin = append(uq.VertexOrigin, OriginClass)
				uq.Graph.MustAddEdge(v, cv, "type")
			}
		case ArgEntity:
			if len(a.Candidates) == 0 {
				return nil, fmt.Errorf("nlq: entity %q has no linking candidates", a.Surface)
			}
			labels := make([]ugraph.Label, 0, len(a.Candidates))
			seen := make(map[string]bool, len(a.Candidates))
			total := 0.0
			for _, c := range a.Candidates {
				if seen[c.Entity] {
					continue
				}
				seen[c.Entity] = true
				labels = append(labels, ugraph.Label{Name: c.Entity, P: c.P})
				total += c.P
			}
			if total > 1+ugraph.ProbEpsilon {
				// Normalise defensive lexicons whose confidences overshoot.
				for j := range labels {
					labels[j].P /= total
				}
			}
			v := uq.Graph.AddVertex(labels...)
			uq.VertexArg = append(uq.VertexArg, i)
			uq.VertexOrigin = append(uq.VertexOrigin, OriginEntity)
			argVertex[i] = v
		default:
			return nil, fmt.Errorf("nlq: unknown argument kind %d", a.Kind)
		}
	}

	for _, r := range sg.Rels {
		if len(r.Candidates) == 0 {
			return nil, fmt.Errorf("nlq: relation %q has no predicate candidates", r.Phrase)
		}
		pred := r.Candidates[0].Predicate
		if err := uq.Graph.AddEdge(argVertex[r.Arg1], argVertex[r.Arg2], pred); err != nil {
			return nil, fmt.Errorf("nlq: %w", err)
		}
	}
	if err := uq.Graph.Validate(); err != nil {
		return nil, err
	}
	return uq, nil
}

// Interpret is the full question → uncertain graph pipeline.
func Interpret(question string, lex *linker.Lexicon) (*UncertainQuestion, error) {
	sg, err := Extract(question, lex)
	if err != nil {
		return nil, err
	}
	return sg.ToUncertain()
}

// ToUncertainReified converts the semantic query graph into the reified
// uncertain model of §3.1.1's general case: every relation becomes a
// fictitious vertex whose candidate labels are the relation phrase's
// predicate paraphrases with their confidences (capped at maxPreds, then
// renormalised), connected by fixed-label half-edges. Join it against
// graph.Reify of the SPARQL query graphs. Unlike ToUncertain, ambiguous
// relation phrases stay ambiguous instead of collapsing to their top
// paraphrase.
func (sg *SemanticGraph) ToUncertainReified(maxPreds int) (*UncertainQuestion, error) {
	if maxPreds <= 0 {
		maxPreds = 3
	}
	base, err := sg.ToUncertain()
	if err != nil {
		return nil, err
	}
	// Rebuild with fictitious relation vertices. Argument vertices keep
	// their positions; relation vertices are appended.
	uq := &UncertainQuestion{Graph: ugraph.New(base.Graph.NumVertices() + len(sg.Rels)), Sem: sg}
	for v := 0; v < base.Graph.NumVertices(); v++ {
		uq.Graph.AddVertex(base.Graph.Labels(v)...)
	}
	uq.VertexArg = append(uq.VertexArg, base.VertexArg...)
	uq.VertexOrigin = append(uq.VertexOrigin, base.VertexOrigin...)

	for _, e := range base.Graph.Edges() {
		cands := relationCandidates(sg, e.Label)
		var labels []ugraph.Label
		if len(cands) == 0 {
			labels = []ugraph.Label{{Name: e.Label, P: 1}}
		} else {
			if len(cands) > maxPreds {
				cands = cands[:maxPreds]
			}
			total := 0.0
			for _, c := range cands {
				total += c.P
			}
			for _, c := range cands {
				labels = append(labels, ugraph.Label{Name: c.Predicate, P: c.P / total})
			}
		}
		m := uq.Graph.AddVertex(labels...)
		uq.VertexArg = append(uq.VertexArg, -1)
		uq.VertexOrigin = append(uq.VertexOrigin, OriginClass) // fictitious; never slotted (VertexArg -1)
		uq.Graph.MustAddEdge(e.From, m, graph.ReifiedEdgeLabel)
		uq.Graph.MustAddEdge(m, e.To, graph.ReifiedEdgeLabel)
	}
	if err := uq.Graph.Validate(); err != nil {
		return nil, err
	}
	return uq, nil
}

// relationCandidates finds the paraphrase candidates whose top predicate was
// used for the given edge label.
func relationCandidates(sg *SemanticGraph, top string) []linker.PredicateCandidate {
	for _, r := range sg.Rels {
		if len(r.Candidates) > 0 && r.Candidates[0].Predicate == top {
			return r.Candidates
		}
	}
	return nil
}

// InterpretReified is Interpret with edge-label uncertainty enabled.
func InterpretReified(question string, lex *linker.Lexicon) (*UncertainQuestion, error) {
	sg, err := Extract(question, lex)
	if err != nil {
		return nil, err
	}
	return sg.ToUncertainReified(3)
}
