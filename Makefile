GO ?= go

.PHONY: all build test race vet fmt ci bench bench-join clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-heavy packages: the join worker pools, the
# pooled/scratch-reusing filter and GED kernels they call, and the
# observability instruments they write through.
race:
	$(GO) test -race ./internal/core ./internal/filter ./internal/ged ./internal/obs

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci:
	./scripts/ci.sh

# Full suite, quick pass.
bench:
	$(GO) test -bench . -benchtime 2x -run '^$$' .

# Join hot-path benchmarks, averaged over several runs, emitted as
# machine-readable BENCH_join.json (see scripts/bench.sh for knobs).
bench-join:
	./scripts/bench.sh

clean:
	$(GO) clean ./...
