GO ?= go

.PHONY: all build test race vet fmt ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-heavy packages: the join worker pool and the
# observability instruments it writes through.
race:
	$(GO) test -race ./internal/core ./internal/obs

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci:
	./scripts/ci.sh

bench:
	$(GO) test -bench . -benchtime 2x -run '^$$' .

clean:
	$(GO) clean ./...
