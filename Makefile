GO ?= go

.PHONY: all build test race vet fmt fuzz ci bench bench-join bench-shard bench-plan clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-heavy packages: the join worker pools, the
# pooled/scratch-reusing filter and GED kernels they call, and the
# observability instruments they write through.
race:
	$(GO) test -race ./internal/core ./internal/filter ./internal/ged ./internal/obs ./internal/fault ./internal/server ./internal/plan

# Coverage-guided smoke on each fuzz target (seed corpora live under
# internal/*/testdata/fuzz; crashers found in CI land there too).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseQuery$$' -fuzztime 20s ./internal/sparql
	$(GO) test -run '^$$' -fuzz '^FuzzParseTriples$$' -fuzztime 20s ./internal/rdf
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeJoinRequest$$' -fuzztime 20s ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeAskRequest$$' -fuzztime 20s ./internal/server

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci:
	./scripts/ci.sh

# Full suite, quick pass.
bench:
	$(GO) test -bench . -benchtime 2x -run '^$$' .

# Join hot-path benchmarks, averaged over several runs, emitted as
# machine-readable BENCH_join.json (see scripts/bench.sh for knobs).
bench-join:
	./scripts/bench.sh

# Sharded vs single-engine join benchmarks, emitted as BENCH_shard.json
# (set SHARD_MILESTONE to also measure the milestone workload fraction).
bench-shard:
	./scripts/bench_shard.sh

# Adaptive-planner vs static-chain benchmarks, emitted as BENCH_plan.json
# (see scripts/bench_plan.sh for knobs).
bench-plan:
	./scripts/bench_plan.sh

clean:
	$(GO) clean ./...
