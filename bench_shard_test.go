package simjoin

// Benchmarks for the sharded, signature-banded join (DESIGN.md §15): the
// single-engine indexed path against the per-shard pipelines with their
// cross-band dedup merge stage, on the template workload both paths return
// identical results for. scripts/bench_shard.sh runs these and writes
// BENCH_shard.json; scripts/benchgate gates the trajectory.
//
// BenchmarkShardMilestone is the 10^6 x 10^5 trajectory point. The full
// workload is far beyond a routine CI budget on one core, so the bench is
// env-gated: SHARD_MILESTONE selects the milestone fraction (e.g. 0.01 for
// 10^4 x 10^3, 1 for the full run) and the bench skips when it is unset.
// Throughput is additionally reported as pairs/s so runs at different
// fractions stay comparable.

import (
	"context"
	"os"
	"strconv"
	"testing"

	"simjoin/internal/core"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

// shardBenchOptions is the shared join configuration: one worker (the
// speedup must come from banded candidate generation, not parallelism).
func shardBenchOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Tau = 1
	opts.Alpha = 0.5
	opts.Mode = core.ModeSimJ
	opts.Workers = 1
	opts.KeepMappings = false
	return opts
}

// runShardBench times one configuration, reporting pairs/s alongside ns/op.
func runShardBench(b *testing.B, d []*graph.Graph, u []*ugraph.Graph, opts core.Options) {
	b.Helper()
	totalPairs := int64(len(d)) * int64(len(u))
	var results int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if opts.Shards > 1 {
			var pairs []core.Pair
			pairs, _, _, err = core.ShardedJoinStats(context.Background(), d, u, opts)
			results = len(pairs)
		} else {
			idx := core.BuildIndex(d)
			var pairs []core.Pair
			pairs, _, err = core.JoinIndexed(idx, u, opts)
			results = len(pairs)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(totalPairs)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
	b.ReportMetric(float64(results), "results")
}

// BenchmarkShardedJoin compares the single indexed engine against the
// sharded pipelines on the smoke-scale template workload (10^3 x 10^2).
func BenchmarkShardedJoin(b *testing.B) {
	d, u := workload.Scaled(workload.SmokeScaledConfig())
	for _, bc := range []struct {
		name          string
		shards, block int
	}{
		{"single", 0, 0},
		{"shards=2", 2, 0},
		{"shards=8", 8, 0},
		{"shards=8,block", 8, 64},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := shardBenchOptions()
			opts.Shards = bc.shards
			opts.Bands = 4
			opts.BlockSize = bc.block
			runShardBench(b, d, u, opts)
		})
	}
}

// BenchmarkShardMilestone is the trajectory bench behind BENCH_shard.json:
// the milestone template workload at the fraction named by SHARD_MILESTONE.
func BenchmarkShardMilestone(b *testing.B) {
	frac := os.Getenv("SHARD_MILESTONE")
	if frac == "" {
		b.Skip("set SHARD_MILESTONE to a milestone fraction (e.g. 0.01, or 1 for the full 10^6 x 10^5 run)")
	}
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil || f <= 0 || f > 1 {
		b.Fatalf("SHARD_MILESTONE=%q: want a fraction in (0, 1]", frac)
	}
	cfg := workload.MilestoneScaledConfig().WithScale(f)
	d, u := workload.Scaled(cfg)
	b.Logf("milestone fraction %v: |D|=%d |U|=%d", f, len(d), len(u))
	b.Run("single", func(b *testing.B) {
		runShardBench(b, d, u, shardBenchOptions())
	})
	b.Run("sharded=8", func(b *testing.B) {
		opts := shardBenchOptions()
		opts.Shards = 8
		opts.Bands = 4
		runShardBench(b, d, u, opts)
	})
}
