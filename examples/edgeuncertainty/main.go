// Edgeuncertainty demonstrates the paper's §3.1.1 "general case": modelling
// uncertain RELATION paraphrases with fictitious vertices (graph.Reify).
//
// The phrase "staying in" could mean livesIn (0.45) or birthPlace (0.55).
// Collapsing to the top paraphrase joins the question with the WRONG query;
// the reified join keeps both readings alive as possible worlds and matches
// the right query too — with exactly the probability the paraphrase
// dictionary assigns it.
//
//	go run ./examples/edgeuncertainty
package main

import (
	"fmt"

	"simjoin/internal/core"
	"simjoin/internal/graph"
	"simjoin/internal/linker"
	"simjoin/internal/nlq"
	"simjoin/internal/sparql"
	"simjoin/internal/ugraph"
)

func main() {
	lex := linker.NewLexicon()
	lex.AddEntity("Cedarville", "Cedarville", "City", 1.0)
	lex.AddRelation("staying in", "birthPlace", 0.55)
	lex.AddRelation("staying in", "livesIn", 0.45)
	lex.AddClass("musician", "Musician")

	question := "Which musician staying in Cedarville?"
	livesInQ := sparql.MustBuildQueryGraph(sparql.MustParse(
		`SELECT ?x WHERE { ?x type Musician . ?x livesIn Cedarville . }`))
	birthQ := sparql.MustBuildQueryGraph(sparql.MustParse(
		`SELECT ?x WHERE { ?x type Musician . ?x birthPlace Cedarville . }`))

	// Collapsed model: the edge takes the top paraphrase only.
	uq, err := nlq.Interpret(question, lex)
	check(err)
	run("collapsed top-1", []*graph.Graph{livesInQ.Graph, birthQ.Graph}, uq.Graph, 0)

	// Reified model: the relation becomes a fictitious vertex carrying the
	// full paraphrase distribution; queries are reified the same way.
	ruq, err := nlq.InterpretReified(question, lex)
	check(err)
	run("reified", []*graph.Graph{graph.Reify(livesInQ.Graph), graph.Reify(birthQ.Graph)}, ruq.Graph, 0)
}

func run(name string, d []*graph.Graph, g *ugraph.Graph, tau int) {
	opts := core.DefaultOptions()
	opts.Tau = tau
	opts.Alpha = 0.05
	opts.Mode = core.ModeSimJ
	opts.Workers = 1
	pairs, _, err := core.Join(d, []*ugraph.Graph{g}, opts)
	check(err)
	names := []string{"livesIn query", "birthPlace query"}
	fmt.Printf("%-16s (tau=%d):", name, tau)
	if len(pairs) == 0 {
		fmt.Print("  no matches")
	}
	for _, p := range pairs {
		fmt.Printf("  %s SimP=%.2f", names[p.Q], p.SimP)
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
