// Templategen walks the paper's full template-generation pipeline (§2.1) on
// the running example of Figs. 2–4: interpret a question into an uncertain
// graph, join it against a SPARQL workload, and build a template from the
// matched pair's vertex mapping.
//
//	go run ./examples/templategen
package main

import (
	"fmt"

	"simjoin/internal/core"
	"simjoin/internal/graph"
	"simjoin/internal/linker"
	"simjoin/internal/nlq"
	"simjoin/internal/sparql"
	"simjoin/internal/template"
	"simjoin/internal/ugraph"
)

func main() {
	// Step 0: the lexicon stands in for entity linking and relation
	// paraphrasing services (DESIGN.md, substitution 3).
	lex := linker.NewLexicon()
	lex.AddEntity("CIT", "California_Institute_of_Technology", "University", 0.8)
	lex.AddEntity("CIT", "CIT_Group", "Company", 0.2)
	lex.AddRelation("graduated from", "graduatedFrom", 1.0)
	lex.AddClass("politician", "Politician")
	lex.AddClass("scientist", "Scientist")

	// Step 1: uncertain graph generation from the question.
	questionText := "Which politician graduated from CIT?"
	uq, err := nlq.Interpret(questionText, lex)
	check(err)
	fmt.Println("question:       ", questionText)
	fmt.Println("uncertain graph:", uq.Graph)

	// The SPARQL workload (here a single query, Fig. 4c).
	qg, err := sparql.ParseToGraph(
		`SELECT ?x WHERE { ?x type Politician . ?x graduatedFrom California_Institute_of_Technology . }`)
	check(err)
	fmt.Println("SPARQL query:   ", qg.Query)

	// Step 2: finding similar graph pairs with SimJ.
	opts := core.DefaultOptions()
	pairs, _, err := core.Join([]*graph.Graph{qg.Graph}, []*ugraph.Graph{uq.Graph}, opts)
	check(err)
	if len(pairs) == 0 {
		panic("no similar pair found")
	}
	p := pairs[0]
	fmt.Printf("similar pair:    SimP=%.2f ged=%d mapping=%v\n", p.SimP, p.Distance, p.Mapping)

	// Step 3: generating the template from the pair's mapping (Fig. 4d).
	tpl, err := template.Generate(qg, uq, p.Mapping)
	check(err)
	fmt.Println("template:       ", tpl)

	// Q/A with the template (§2.2): a NEW question matches through
	// dependency-tree alignment and slot filling.
	lex.AddEntity("Grand Elm University", "Grand_Elm_University", "University", 1.0)
	newQuestion := "Which scientist graduated from Grand Elm University?"
	m := tpl.MatchQuestion(newQuestion, lex)
	fmt.Printf("new question:    %q  (TED=%d, phi=%.2f)\n", newQuestion, m.TED, m.Phi)
	query, err := m.Instantiate(lex)
	check(err)
	fmt.Println("instantiated:   ", query)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
