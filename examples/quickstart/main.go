// Quickstart: the uncertain graph similarity join in ~40 lines.
//
// A SPARQL query graph (certain) is joined against a natural-language
// question graph (uncertain, because "CIT" links to two possible entities)
// under the paper's predicate SimPτ(q,g) ≥ α.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"simjoin/internal/core"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

func main() {
	// Certain side: SELECT ?x WHERE { ?x type Politician . ?x graduatedFrom CIT_University }
	q := graph.New(3)
	x := q.AddVertex("?x") // '?' labels are wildcards: they match anything
	pol := q.AddVertex("Politician")
	cit := q.AddVertex("CIT_University")
	q.MustAddEdge(x, pol, "type")
	q.MustAddEdge(x, cit, "graduatedFrom")

	// Uncertain side: "Which politician graduated from CIT?" — the mention
	// "CIT" is ambiguous, so the vertex carries two candidate labels.
	g := ugraph.New(3)
	gx := g.AddVertex(ugraph.Label{Name: "?x", P: 1})
	gp := g.AddVertex(ugraph.Label{Name: "Politician", P: 1})
	gc := g.AddVertex(
		ugraph.Label{Name: "CIT_University", P: 0.8},
		ugraph.Label{Name: "CIT_Group", P: 0.2},
	)
	g.MustAddEdge(gx, gp, "type")
	g.MustAddEdge(gx, gc, "graduatedFrom")

	opts := core.DefaultOptions() // tau=1, alpha=0.9, SimJ+opt
	pairs, stats, err := core.Join([]*graph.Graph{q}, []*ugraph.Graph{g}, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("matched pairs: %d (candidates after pruning: %d of %d)\n",
		len(pairs), stats.Candidates, stats.Pairs)
	for _, p := range pairs {
		fmt.Printf("  q%d ~ g%d  SimP=%.2f  ged=%d  best world: %v\n",
			p.Q, p.G, p.SimP, p.Distance, p.World)
	}
}
