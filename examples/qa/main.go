// QA demonstrates the complete template-based question answering system
// (Fig. 1): generate a knowledge base with paired workloads, learn templates
// through the uncertain graph similarity join, and answer fresh questions —
// comparing against the gAnswer-style direct-translation baseline.
//
//	go run ./examples/qa
package main

import (
	"fmt"

	"simjoin/internal/experiments"
	"simjoin/internal/qa"
	"simjoin/internal/workload"
)

func main() {
	cfg := workload.QALD3Config()
	cfg.Questions = 300
	w, err := workload.GenerateQA(cfg)
	check(err)
	fmt.Printf("knowledge base: %d triples, %d questions, %d SPARQL queries\n",
		w.KB.Store.Len(), len(w.Questions), len(w.Sparql))

	p := experiments.Prepare(w)
	pairs, _, err := p.Join(experiments.DefaultJoinOptions())
	check(err)
	store, _ := p.BuildTemplates(pairs)
	fmt.Printf("join: %d pairs (precision %.2f), %d templates learned\n",
		len(pairs), p.Precision(pairs), store.Len())

	tmpl := &qa.TemplateSystem{Store: store, Lex: w.KB.Lexicon, KB: w.KB.Store, MinPhi: 0.5}
	gans := &qa.GAnswerSystem{Lex: w.KB.Lexicon, KB: w.KB.Store}

	for _, q := range w.HoldoutQuestions(42, 5, 0.2) {
		fmt.Printf("\nQ: %s\n", q.Text)
		for _, sys := range []qa.System{tmpl, gans} {
			res, err := sys.Answer(q.Text)
			if err != nil {
				fmt.Printf("  %-8s (no answer: %v)\n", sys.Name(), err)
				continue
			}
			var vals []string
			for _, b := range res {
				for _, v := range b {
					vals = append(vals, v)
					break
				}
			}
			fmt.Printf("  %-8s %v\n", sys.Name(), vals)
		}
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
