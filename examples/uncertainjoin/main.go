// Uncertainjoin exercises the join engine on purely synthetic uncertain
// graphs (the paper's ER workload, §7.1.1), showing how the three pruning
// pipelines trade filtering effort for candidate reduction.
//
//	go run ./examples/uncertainjoin
package main

import (
	"fmt"
	"time"

	"simjoin/internal/core"
	"simjoin/internal/workload"
)

func main() {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 30
	d, u := workload.ER(cfg)
	fmt.Printf("ER workload: %d certain x %d uncertain graphs (~%d vertices each)\n",
		len(d), len(u), cfg.Vertices)

	for _, mode := range []core.Mode{core.ModeCSSOnly, core.ModeSimJ, core.ModeSimJOpt} {
		opts := core.DefaultOptions()
		opts.Tau = 3
		opts.Alpha = 0.5
		opts.Mode = mode
		opts.GroupCount = 8
		opts.Workers = 1

		start := time.Now()
		pairs, st, err := core.Join(d, u, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9s results=%-3d candidates=%.4f prune=%v verify=%v total=%v\n",
			mode, len(pairs), st.CandidateRatio(),
			st.PruneTime.Round(time.Millisecond),
			st.VerifyTime.Round(time.Millisecond),
			time.Since(start).Round(time.Millisecond))
	}
}
