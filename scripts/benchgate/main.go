// Command benchgate compares a fresh scripts/bench.sh summary against the
// committed baseline (BENCH_join.json) and exits non-zero when any
// benchmark's ns/op or allocs/op regressed beyond its budget. CI runs it
// after `make bench-join` so a pipeline change that slows the join hot path
// — or quietly starts allocating in a kernel pinned at zero — fails loudly
// instead of silently rotting the baseline.
//
// The baseline's v2 schema additionally carries per-bound prune rates
// measured on the deterministic CI workload, keyed by bound name (folded
// across chain positions, so adaptive reordering doesn't shift the keys);
// passing -stats (a `simjoin -stats-json` document from the same workload)
// gates prune-rate drift too, so a bounds change that silently weakens
// pruning fails the same way a slowdown does. Legacy v1 baselines (a plain
// benchmark map) still load.
//
//	go run ./scripts/benchgate -baseline BENCH_join.json -current /tmp/bench.json \
//	    -max-regress 25 -max-allocs-regress 10 -stats /tmp/stats.json -max-prune-drift 5
//
// After intentionally changing the filter chain's behaviour, re-bake the
// baseline's prune rates with:
//
//	go run ./scripts/benchgate -baseline BENCH_join.json -stats /tmp/stats.json -update-prune
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// baselineDoc is the v2 baseline schema: benchmarks plus the prune rates of
// the deterministic CI join. The v1 schema was the bare benchmarks map.
type baselineDoc struct {
	Benchmarks map[string]result  `json:"benchmarks"`
	PruneRates map[string]float64 `json:"prune_rates,omitempty"`
}

// load reads a summary in either schema: v2 (object with a "benchmarks" key)
// is tried first, then v1 (plain name → result map).
func load(path string) (*baselineDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v2 baselineDoc
	if err := json.Unmarshal(data, &v2); err == nil && len(v2.Benchmarks) > 0 {
		return &v2, nil
	}
	var v1 map[string]result
	if err := json.Unmarshal(data, &v1); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(v1) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &baselineDoc{Benchmarks: v1}, nil
}

// statsDoc is the slice of a `simjoin -stats-json` document benchgate needs:
// the per-bound profile of the join's filter chain.
type statsDoc struct {
	Stats struct {
		BoundProfile []struct {
			Pos    int    `json:"pos"`
			Bound  string `json:"bound"`
			Evals  int64  `json:"evals"`
			Prunes int64  `json:"prunes"`
		} `json:"BoundProfile"`
	} `json:"stats"`
}

// pruneRates extracts bound name → prune-rate from a stats document. Entries
// are folded by name (evals and prunes summed across chain positions) so the
// gate compares the same bound across runs even when the adaptive planner —
// or a deliberate chain reshuffle — placed it at a different position.
func pruneRates(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc statsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Stats.BoundProfile) == 0 {
		return nil, fmt.Errorf("%s: no BoundProfile (run simjoin with -stats-json)", path)
	}
	type tally struct{ evals, prunes int64 }
	byName := make(map[string]*tally, len(doc.Stats.BoundProfile))
	for _, bc := range doc.Stats.BoundProfile {
		t := byName[bc.Bound]
		if t == nil {
			t = &tally{}
			byName[bc.Bound] = t
		}
		t.evals += bc.Evals
		t.prunes += bc.Prunes
	}
	rates := make(map[string]float64, len(byName))
	for name, t := range byName {
		if t.evals == 0 {
			continue
		}
		rates[name] = float64(t.prunes) / float64(t.evals)
	}
	return rates, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_join.json", "committed baseline summary")
	current := flag.String("current", "", "freshly measured summary to gate")
	maxRegress := flag.Float64("max-regress", 25, "ns/op regression budget in percent")
	maxAllocs := flag.Float64("max-allocs-regress", 10, "allocs/op regression budget in percent (a zero-alloc baseline tolerates no allocation at all)")
	stats := flag.String("stats", "", "simjoin -stats-json document from the deterministic CI workload; gates per-bound prune-rate drift against the baseline's prune_rates")
	maxPrune := flag.Float64("max-prune-drift", 5, "prune-rate drift budget in percentage points")
	updatePrune := flag.Bool("update-prune", false, "rewrite the baseline with the prune rates measured in -stats (v2 schema) and exit")
	optional := flag.String("optional", "", "regexp of baseline benchmarks that may be absent from the current run (reported SKIPPED instead of failing as MISSING; e.g. env-gated milestone benches)")
	flag.Parse()

	if err := run(*baseline, *current, *stats, *optional, *maxRegress, *maxAllocs, *maxPrune, *updatePrune); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath, currentPath, statsPath, optional string, maxRegress, maxAllocs, maxPrune float64, updatePrune bool) error {
	base, err := load(baselinePath)
	if err != nil {
		return err
	}
	var optionalRe *regexp.Regexp
	if optional != "" {
		if optionalRe, err = regexp.Compile(optional); err != nil {
			return fmt.Errorf("-optional: %w", err)
		}
	}

	if updatePrune {
		if statsPath == "" {
			return fmt.Errorf("-update-prune requires -stats")
		}
		rates, err := pruneRates(statsPath)
		if err != nil {
			return err
		}
		base.PruneRates = rates
		if err := writeBaseline(baselinePath, base); err != nil {
			return err
		}
		fmt.Printf("baked %d prune rates into %s\n", len(rates), baselinePath)
		return nil
	}

	if currentPath == "" {
		return fmt.Errorf("-current is required")
	}
	cur, err := load(currentPath)
	if err != nil {
		return err
	}
	if err := gate(base.Benchmarks, cur.Benchmarks, optionalRe, maxRegress, maxAllocs); err != nil {
		return err
	}
	if statsPath != "" {
		if err := gatePrune(base.PruneRates, statsPath, maxPrune); err != nil {
			return err
		}
	}
	return nil
}

func writeBaseline(path string, doc *baselineDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func gate(base, cur map[string]result, optional *regexp.Regexp, budget, allocsBudget float64) error {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failed bool
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			// Env-gated benches (e.g. the full shard milestone) are baked
			// into the baseline but absent from routine CI runs.
			if optional != nil && optional.MatchString(name) {
				fmt.Printf("SKIPPED %-24s not in current run (-optional)\n", name)
				continue
			}
			fmt.Printf("MISSING %-24s not in current run\n", name)
			failed = true
			continue
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("baseline %s has ns_per_op %v", name, b.NsPerOp)
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		status := "ok"
		if delta > budget {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-9s %-24s %12.0f -> %12.0f ns/op (%+.1f%%, budget +%.0f%%)\n",
			status, name, b.NsPerOp, c.NsPerOp, delta, budget)

		if !allocsOK(b.AllocsPerOp, c.AllocsPerOp, allocsBudget) {
			failed = true
			fmt.Printf("%-9s %-24s %12.0f -> %12.0f allocs/op (budget +%.0f%%)\n",
				"REGRESSED", name, b.AllocsPerOp, c.AllocsPerOp, allocsBudget)
		}
	}
	if failed {
		return fmt.Errorf("ns/op or allocs/op regression beyond budget (or missing benchmark)")
	}
	return nil
}

// gatePrune compares the measured per-bound prune rates against the
// baseline's. Rates are deterministic on the seeded CI workload, so drift
// means the filter chain's pruning behaviour actually changed.
func gatePrune(base map[string]float64, statsPath string, budget float64) error {
	if len(base) == 0 {
		return fmt.Errorf("baseline has no prune_rates; bake them with -update-prune -stats %s", statsPath)
	}
	cur, err := pruneRates(statsPath)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var failed bool
	for _, k := range keys {
		c, ok := cur[k]
		if !ok {
			fmt.Printf("MISSING %-24s bound not evaluated in current run\n", k)
			failed = true
			continue
		}
		drift := (c - base[k]) * 100
		status := "ok"
		if math.Abs(drift) > budget {
			status = "DRIFTED"
			failed = true
		}
		fmt.Printf("%-9s %-24s %12.4f -> %12.4f prune rate (%+.2fpp, budget ±%.0fpp)\n",
			status, k, base[k], c, drift, budget)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("NEW       %-24s prune rate %.4f not in baseline (re-bake with -update-prune)\n", k, cur[k])
		}
	}
	if failed {
		return fmt.Errorf("prune-rate drift beyond ±%vpp (or missing bound)", budget)
	}
	return nil
}

// allocsOK gates the allocation count. A zero-alloc baseline admits no
// allocations at all (percentages are meaningless against zero); otherwise
// the current count may exceed the baseline by at most the percentage budget.
func allocsOK(base, cur, budget float64) bool {
	if base == 0 {
		return cur == 0
	}
	return (cur-base)/base*100 <= budget
}
