// Command benchgate compares a fresh scripts/bench.sh summary against the
// committed baseline (BENCH_join.json) and exits non-zero when any
// benchmark's ns/op or allocs/op regressed beyond its budget. CI runs it
// after `make bench-join` so a pipeline change that slows the join hot path
// — or quietly starts allocating in a kernel pinned at zero — fails loudly
// instead of silently rotting the baseline.
//
//	go run ./scripts/benchgate -baseline BENCH_join.json -current /tmp/bench.json -max-regress 25 -max-allocs-regress 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]result
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return m, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_join.json", "committed baseline summary")
	current := flag.String("current", "", "freshly measured summary to gate")
	maxRegress := flag.Float64("max-regress", 25, "ns/op regression budget in percent")
	maxAllocs := flag.Float64("max-allocs-regress", 10, "allocs/op regression budget in percent (a zero-alloc baseline tolerates no allocation at all)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err == nil {
		var cur map[string]result
		cur, err = load(*current)
		if err == nil {
			err = gate(base, cur, *maxRegress, *maxAllocs)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func gate(base, cur map[string]result, budget, allocsBudget float64) error {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failed bool
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING %-24s not in current run\n", name)
			failed = true
			continue
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("baseline %s has ns_per_op %v", name, b.NsPerOp)
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		status := "ok"
		if delta > budget {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-9s %-24s %12.0f -> %12.0f ns/op (%+.1f%%, budget +%.0f%%)\n",
			status, name, b.NsPerOp, c.NsPerOp, delta, budget)

		if !allocsOK(b.AllocsPerOp, c.AllocsPerOp, allocsBudget) {
			failed = true
			fmt.Printf("%-9s %-24s %12.0f -> %12.0f allocs/op (budget +%.0f%%)\n",
				"REGRESSED", name, b.AllocsPerOp, c.AllocsPerOp, allocsBudget)
		}
	}
	if failed {
		return fmt.Errorf("ns/op or allocs/op regression beyond budget (or missing benchmark)")
	}
	return nil
}

// allocsOK gates the allocation count. A zero-alloc baseline admits no
// allocations at all (percentages are meaningless against zero); otherwise
// the current count may exceed the baseline by at most the percentage budget.
func allocsOK(base, cur, budget float64) bool {
	if base == 0 {
		return cur == 0
	}
	return (cur-base)/base*100 <= budget
}
