// Command obsdiff compares two `simjoin -stats-json` snapshots and reports
// drift in the quantities a pipeline change is most likely to disturb
// silently: per-bound prune rates (the filter chain's measured selectivity,
// folded by bound name so adaptive reordering or a deliberate chain reshuffle
// doesn't misalign the comparison) and per-stage latency quantiles. It exits
// non-zero when the
// prune-rate drift exceeds its budget, so CI can pin the filter chain's
// pruning behaviour on a deterministic workload across PRs; latency drift is
// reported but only gated when a budget is set (wall time is noisy in CI).
//
//	go run ./scripts/obsdiff -max-prune-drift 5 before.json after.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"simjoin/internal/core"
	"simjoin/internal/obs"
)

// doc mirrors the -stats-json document written by cmd/simjoin.
type doc struct {
	Stats   core.Stats   `json:"stats"`
	Metrics obs.Snapshot `json:"metrics"`
}

func load(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// stages lists the latency histograms compared between the two runs.
var stages = []string{
	"simjoin_source_seconds",
	"simjoin_prune_seconds",
	"simjoin_verify_seconds",
}

func main() {
	maxPrune := flag.Float64("max-prune-drift", 5, "per-bound prune-rate drift budget in percentage points")
	maxLatency := flag.Float64("max-latency-drift", 0, "stage P95 latency drift budget in percent (0 reports without gating)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: obsdiff [flags] <before.json> <after.json>")
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	if err == nil {
		var b *doc
		b, err = load(flag.Arg(1))
		if err == nil {
			err = diff(a, b, *maxPrune, *maxLatency)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdiff:", err)
		os.Exit(1)
	}
}

func diff(a, b *doc, maxPrune, maxLatency float64) error {
	failed := false

	fmt.Println("per-bound prune rates:")
	fmt.Printf("  %-12s %10s %10s %10s\n", "bound", "before", "after", "drift(pp)")
	aProf := core.ProfileByBound(a.Stats.BoundProfile)
	bByName := profileByName(core.ProfileByBound(b.Stats.BoundProfile))
	for i := range aProf {
		ac := &aProf[i]
		bc, ok := bByName[ac.Bound]
		if !ok {
			fmt.Printf("  %-12s %10.4f %10s missing in after run\n", ac.Bound, ac.Selectivity(), "-")
			failed = true
			continue
		}
		drift := (bc.Selectivity() - ac.Selectivity()) * 100
		status := ""
		if math.Abs(drift) > maxPrune {
			status = "  DRIFTED"
			failed = true
		}
		fmt.Printf("  %-12s %10.4f %10.4f %+10.2f%s\n",
			ac.Bound, ac.Selectivity(), bc.Selectivity(), drift, status)
	}
	aByName := profileByName(aProf)
	for _, bc := range core.ProfileByBound(b.Stats.BoundProfile) {
		if _, ok := aByName[bc.Bound]; !ok {
			fmt.Printf("  %-12s %10s %10.4f new in after run\n", bc.Bound, "-", bc.Selectivity())
		}
	}

	fmt.Println("stage latency (P95):")
	fmt.Printf("  %-24s %12s %12s %10s\n", "stage", "before", "after", "drift")
	for _, name := range stages {
		ha, okA := a.Metrics.Histograms[name]
		hb, okB := b.Metrics.Histograms[name]
		if !okA || !okB || ha.Count == 0 || hb.Count == 0 {
			continue
		}
		pa, pb := ha.Quantile(0.95), hb.Quantile(0.95)
		if pa <= 0 {
			continue
		}
		drift := (pb - pa) / pa * 100
		status := ""
		if maxLatency > 0 && drift > maxLatency {
			status = "  DRIFTED"
			failed = true
		}
		fmt.Printf("  %-24s %11.0fµs %11.0fµs %+9.1f%%%s\n", name, pa*1e6, pb*1e6, drift, status)
	}

	// Headline ratios for context (never gated — they restate the prune rates).
	fmt.Printf("candidate ratio: %.4f -> %.4f\n", a.Stats.CandidateRatio(), b.Stats.CandidateRatio())

	if failed {
		return fmt.Errorf("drift beyond budget (prune %vpp, latency %v%%)", maxPrune, maxLatency)
	}
	return nil
}

func profileByName(prof []core.BoundCost) map[string]*core.BoundCost {
	m := make(map[string]*core.BoundCost, len(prof))
	for i := range prof {
		m[prof[i].Bound] = &prof[i]
	}
	return m
}
