#!/bin/sh
# Benchmark the adaptive planner against the static chain and emit a
# machine-readable summary.
#
# Runs the planner suite (BenchmarkJoinPlanStatic vs BenchmarkJoinPlanAdaptive
# on the adversarial workload whose static chain order is maximally wrong, and
# BenchmarkJoinPlanER vs BenchmarkJoinPlanERAdaptive pinning the controller's
# measurement overhead on a well-ordered chain) with -benchmem, averages the
# repetitions, and writes BENCH_plan.json in the v2 schema:
# {"benchmarks": {name: {ns_per_op, allocs_per_op, bytes_per_op, samples}}}.
# The raw `go test` output is echoed so regressions are visible in logs too.
#
# Environment overrides:
#   COUNT   repetitions per benchmark (default 5)
#   PATTERN benchmark regexp (default the planner suite above)
#   OUT     output JSON path (default BENCH_plan.json)
set -eu

COUNT="${COUNT:-5}"
PATTERN="${PATTERN:-^BenchmarkJoinPlan}"
OUT="${OUT:-BENCH_plan.json}"

raw=$(go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" .)
echo "$raw"

echo "$raw" | awk -v out="$OUT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	ns[name] += $3
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op")      bytes[name]  += $(i - 1)
		if ($(i) == "allocs/op") allocs[name] += $(i - 1)
	}
	n[name]++
}
END {
	printf "{\n  \"benchmarks\": {\n" > out
	count = 0
	for (name in n) count++
	i = 0
	# Deterministic key order via a simple insertion sort.
	for (name in n) keys[i++] = name
	for (a = 1; a < i; a++) {
		for (b = a; b > 0 && keys[b] < keys[b-1]; b--) {
			tmp = keys[b]; keys[b] = keys[b-1]; keys[b-1] = tmp
		}
	}
	for (a = 0; a < i; a++) {
		name = keys[a]
		printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f, \"samples\": %d}%s\n", \
			name, ns[name] / n[name], bytes[name] / n[name], allocs[name] / n[name], n[name], \
			(a < i - 1) ? "," : "" > out
	}
	printf "  }\n}\n" > out
}
'
echo "wrote $OUT"
