#!/bin/sh
# CI entry point: formatting, vet, build, full tests, and race detection on
# the concurrency-heavy packages. Run from the repository root.
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test (shuffled)"
go test -shuffle=on ./...

echo "== go test -race, shuffled (core, filter, shard, ged, obs, fault, server, plan)"
go test -race -shuffle=on ./internal/core ./internal/filter ./internal/shard ./internal/ged ./internal/obs ./internal/fault ./internal/server ./internal/plan

echo "== fault injection (failpoints armed end-to-end)"
# Arm failpoints through the environment and run a small join: the pipeline
# must complete, quarantine the panicking pair, and report it — not crash.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj >/dev/null
# Same failpoints through the block-screened path: survivors of the SoA block
# kernels must flow into the identical quarantine/recovery machinery.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj -block-size 256 >/dev/null
# And through the sharded pipelines: a fault in one shard's engine must be
# quarantined there while the other shards' results merge normally.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj -shards 4 >/dev/null

echo "== observability artifacts (explain report, event log, trace, metrics)"
# Run the deterministic CI workload fully instrumented and archive what it
# emits: the -explain cost model, the sampled pair-decision event log, the
# Chrome trace, and the metrics snapshot. The snapshot doubles as the input
# to the prune-rate drift gate below; the workload is seeded, so its prune
# rates are exactly reproducible.
ART="${CI_ARTIFACTS:-ci-artifacts}"
mkdir -p "$ART"
go run ./cmd/simjoin -workload er -scale 0.5 -tau 1 -alpha 0.5 -mode opt \
	-explain -events "$ART/events.jsonl" -events-every 10 \
	-stats-json "$ART/stats.json" -trace-out "$ART/trace.json" > "$ART/join-explain.txt"
grep -q 'effective-cost order' "$ART/join-explain.txt"
test -s "$ART/events.jsonl"
# The same workload through the block-screened path (kept out of stats.json so
# the benchgate prune-rate baseline stays pinned to the scalar chain): the
# explain report must rank the block stage at chain position -1.
go run ./cmd/simjoin -workload er -scale 0.5 -tau 1 -alpha 0.5 -mode opt \
	-block-size 256 -explain > "$ART/join-explain-block.txt"
grep -Eq '^[[:space:]]*-1[[:space:]]+block' "$ART/join-explain-block.txt"
# The sharded merge stage's -explain view: the per-shard balance table and
# the max/mean imbalance line must render with one row per shard.
go run ./cmd/simjoin -workload er -scale 0.5 -tau 1 -alpha 0.5 -mode opt \
	-shards 4 -explain > "$ART/join-explain-shard.txt"
grep -q 'per-shard balance (merge stage):' "$ART/join-explain-shard.txt"
grep -q 'shard imbalance (max/mean pairs):' "$ART/join-explain-shard.txt"

echo "== adaptive-vs-static equivalence (-plan chain must not change the join)"
# The race matrix above already pins the equivalence property tests
# (TestAdaptiveChainMatchesStatic and friends); this drives the same contract
# end-to-end through the CLI on the deterministic workload: the adaptive
# chain must report exactly the matches the static chain reports, and the
# same pair total. Result lines are rank-stripped and sorted so only the
# match set and its SimP/ged values are compared.
static_out=$(go run ./cmd/simjoin -workload er -scale 0.5 -tau 2 -alpha 0.3 -mode simj \
	-filters count,lm,cstar,css,prob -show 100000)
adaptive_out=$(go run ./cmd/simjoin -workload er -scale 0.5 -tau 2 -alpha 0.3 -mode simj \
	-filters count,lm,cstar,css,prob -show 100000 -plan chain)
norm_matches() { printf '%s\n' "$1" | sed -n 's/^\[[0-9]*\] //p' | sort; }
pair_total() { printf '%s\n' "$1" | sed -n 's/^pairs: \([0-9]*\) .*/\1/p'; }
# Guard against the comparison going vacuous: this workload must keep
# producing matches, or the step compares two empty sets.
test -n "$(norm_matches "$static_out")"
if [ "$(norm_matches "$static_out")" != "$(norm_matches "$adaptive_out")" ]; then
	echo "adaptive chain changed the join's matches:"
	norm_matches "$static_out" > "$ART/equiv-static.txt"
	norm_matches "$adaptive_out" > "$ART/equiv-adaptive.txt"
	diff -u "$ART/equiv-static.txt" "$ART/equiv-adaptive.txt" || true
	exit 1
fi
test -n "$(pair_total "$static_out")"
test "$(pair_total "$static_out")" = "$(pair_total "$adaptive_out")"

echo "== chaos soak (simjoind + loadgen, failpoints armed, race-built)"
# Out-of-process half of the chaos harness (the in-process half is
# TestChaosSoak under -race above): boot a race-built resident service with
# panics/errors injected at every layer, drive it with concurrent askers
# sized to force shedding and degradation, gate on the envelope's contract
# (exact tier accounting, zero transport errors, shed>0, degraded>0, client
# P99 bounded), then SIGTERM and require a clean drain with the stats
# artifact flushed.
soaktmp=$(mktemp -d)
go build -race -o "$soaktmp/simjoind" ./cmd/simjoind
go build -o "$soaktmp/loadgen" ./cmd/loadgen
SIMJOIN_FAILPOINTS='server.join=error#40,core.pair=panic#20,ged.compute=error#60' \
	"$soaktmp/simjoind" -workload er -tau 2 -alpha 0.5 \
	-addr 127.0.0.1:0 -addr-file "$soaktmp/addr.txt" \
	-max-inflight 4 -max-queue 8 -request-timeout 5s -breaker-window 64 \
	-stats-json "$ART/soak-stats.json" 2> "$ART/soak-server.log" &
soakpid=$!
for _ in $(seq 1 100); do
	[ -s "$soaktmp/addr.txt" ] && break
	sleep 0.1
done
test -s "$soaktmp/addr.txt"
"$soaktmp/loadgen" -url "http://$(cat "$soaktmp/addr.txt")" \
	-n "${SOAK_REQUESTS:-1500}" -workers 48 -timeout 15s \
	-gate-shed -gate-degrade -gate-p99 8s -json "$ART/soak-client.json"
kill -TERM "$soakpid"
wait "$soakpid"
# The flushed snapshot must record a clean drain and zero uncounted panics.
grep -q '"cleanDrain": true' "$ART/soak-stats.json"
grep -q '"server_panics_total": 0' "$ART/soak-stats.json"
rm -rf "$soaktmp"

echo "== fuzz smoke (20s per target)"
go test -run '^$' -fuzz '^FuzzParseQuery$' -fuzztime 20s ./internal/sparql
go test -run '^$' -fuzz '^FuzzParseTriples$' -fuzztime 20s ./internal/rdf
go test -run '^$' -fuzz '^FuzzDecodeJoinRequest$' -fuzztime 20s ./internal/server
go test -run '^$' -fuzz '^FuzzDecodeAskRequest$' -fuzztime 20s ./internal/server

echo "== benchmark regression gate (vs BENCH_join.json, +25% ns/op, +10% allocs/op, ±5pp prune rate)"
# bench.sh covers the join drivers (BenchmarkJoinER/IndexedER/TopK plus the
# block-screened JoinERBlock/JoinIndexedERBlock variants) and the per-pair
# kernel micro-benchmarks (BenchmarkFilterChainSig, BenchmarkWorldLowerBound,
# BenchmarkBlockScreen); the allocs gate keeps the zero-alloc kernels at
# exactly zero. -stats replays the metrics snapshot archived above to pin the
# filter chain's per-bound prune rates against the baseline's prune_rates.
benchtmp=$(mktemp -d)
trap 'rm -rf "$benchtmp"' EXIT
OUT="$benchtmp/bench.json" COUNT=3 make bench-join >/dev/null
go run ./scripts/benchgate -baseline BENCH_join.json -current "$benchtmp/bench.json" \
	-max-regress 25 -max-allocs-regress 10 -stats "$ART/stats.json" -max-prune-drift 5

echo "== sharded-join regression gate (vs BENCH_shard.json, milestone entries optional)"
# bench_shard.sh measures the sharded pipelines against the single engine on
# the smoke template workload. The committed baseline also carries the
# env-gated BenchmarkShardMilestone trajectory (measured with SHARD_MILESTONE
# set); routine CI skips it, so those entries pass through -optional.
OUT="$benchtmp/bench_shard.json" COUNT=3 make bench-shard >/dev/null
go run ./scripts/benchgate -baseline BENCH_shard.json -current "$benchtmp/bench_shard.json" \
	-max-regress 25 -max-allocs-regress 10 -optional '^BenchmarkShardMilestone'

echo "== planner regression gate (vs BENCH_plan.json; adaptive must beat static)"
# bench_plan.sh measures the adaptive chain against the static chain on the
# adversarial workload (static order maximally wrong) and on a well-ordered ER
# join (pins the controller's probe/bookkeeping overhead). Beyond the usual
# per-benchmark regression bounds, the headline claim is asserted directly:
# the adaptive join must stay faster than the static one on the adversarial
# workload, or the reordering machinery has stopped earning its keep.
OUT="$benchtmp/bench_plan.json" COUNT=3 make bench-plan >/dev/null
go run ./scripts/benchgate -baseline BENCH_plan.json -current "$benchtmp/bench_plan.json" \
	-max-regress 25 -max-allocs-regress 10
static_ns=$(sed -n 's/.*"BenchmarkJoinPlanStatic": {"ns_per_op": \([0-9]*\),.*/\1/p' "$benchtmp/bench_plan.json")
adaptive_ns=$(sed -n 's/.*"BenchmarkJoinPlanAdaptive": {"ns_per_op": \([0-9]*\),.*/\1/p' "$benchtmp/bench_plan.json")
test -n "$static_ns" && test -n "$adaptive_ns"
if [ "$adaptive_ns" -ge "$static_ns" ]; then
	echo "adaptive chain no longer beats the static chain on the adversarial workload:"
	echo "  static   $static_ns ns/op"
	echo "  adaptive $adaptive_ns ns/op"
	exit 1
fi

echo "CI passed"
