#!/bin/sh
# CI entry point: formatting, vet, build, full tests, and race detection on
# the concurrency-heavy packages. Run from the repository root.
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test (shuffled)"
go test -shuffle=on ./...

echo "== go test -race, shuffled (core, filter, ged, obs, fault)"
go test -race -shuffle=on ./internal/core ./internal/filter ./internal/ged ./internal/obs ./internal/fault

echo "== fault injection (failpoints armed end-to-end)"
# Arm failpoints through the environment and run a small join: the pipeline
# must complete, quarantine the panicking pair, and report it — not crash.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj >/dev/null
# Same failpoints through the block-screened path: survivors of the SoA block
# kernels must flow into the identical quarantine/recovery machinery.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj -block-size 256 >/dev/null

echo "== observability artifacts (explain report, event log, trace, metrics)"
# Run the deterministic CI workload fully instrumented and archive what it
# emits: the -explain cost model, the sampled pair-decision event log, the
# Chrome trace, and the metrics snapshot. The snapshot doubles as the input
# to the prune-rate drift gate below; the workload is seeded, so its prune
# rates are exactly reproducible.
ART="${CI_ARTIFACTS:-ci-artifacts}"
mkdir -p "$ART"
go run ./cmd/simjoin -workload er -scale 0.5 -tau 1 -alpha 0.5 -mode opt \
	-explain -events "$ART/events.jsonl" -events-every 10 \
	-stats-json "$ART/stats.json" -trace-out "$ART/trace.json" > "$ART/join-explain.txt"
grep -q 'effective-cost order' "$ART/join-explain.txt"
test -s "$ART/events.jsonl"
# The same workload through the block-screened path (kept out of stats.json so
# the benchgate prune-rate baseline stays pinned to the scalar chain): the
# explain report must rank the block stage at chain position -1.
go run ./cmd/simjoin -workload er -scale 0.5 -tau 1 -alpha 0.5 -mode opt \
	-block-size 256 -explain > "$ART/join-explain-block.txt"
grep -Eq '^[[:space:]]*-1[[:space:]]+block' "$ART/join-explain-block.txt"

echo "== fuzz smoke (20s per target)"
go test -run '^$' -fuzz '^FuzzParseQuery$' -fuzztime 20s ./internal/sparql
go test -run '^$' -fuzz '^FuzzParseTriples$' -fuzztime 20s ./internal/rdf

echo "== benchmark regression gate (vs BENCH_join.json, +25% ns/op, +10% allocs/op, ±5pp prune rate)"
# bench.sh covers the join drivers (BenchmarkJoinER/IndexedER/TopK plus the
# block-screened JoinERBlock/JoinIndexedERBlock variants) and the per-pair
# kernel micro-benchmarks (BenchmarkFilterChainSig, BenchmarkWorldLowerBound,
# BenchmarkBlockScreen); the allocs gate keeps the zero-alloc kernels at
# exactly zero. -stats replays the metrics snapshot archived above to pin the
# filter chain's per-bound prune rates against the baseline's prune_rates.
benchtmp=$(mktemp -d)
trap 'rm -rf "$benchtmp"' EXIT
OUT="$benchtmp/bench.json" COUNT=3 make bench-join >/dev/null
go run ./scripts/benchgate -baseline BENCH_join.json -current "$benchtmp/bench.json" \
	-max-regress 25 -max-allocs-regress 10 -stats "$ART/stats.json" -max-prune-drift 5

echo "CI passed"
