#!/bin/sh
# CI entry point: formatting, vet, build, full tests, and race detection on
# the concurrency-heavy packages. Run from the repository root.
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (core, filter, ged, obs)"
go test -race ./internal/core ./internal/filter ./internal/ged ./internal/obs

echo "== benchmark smoke (join benchmarks, 1 iteration)"
go test -run '^$' -bench '^BenchmarkJoin(ER|IndexedER|TopK)$' -benchtime 1x -benchmem .

echo "CI passed"
