#!/bin/sh
# CI entry point: formatting, vet, build, full tests, and race detection on
# the concurrency-heavy packages. Run from the repository root.
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test (shuffled)"
go test -shuffle=on ./...

echo "== go test -race, shuffled (core, filter, shard, ged, obs, fault, server)"
go test -race -shuffle=on ./internal/core ./internal/filter ./internal/shard ./internal/ged ./internal/obs ./internal/fault ./internal/server

echo "== fault injection (failpoints armed end-to-end)"
# Arm failpoints through the environment and run a small join: the pipeline
# must complete, quarantine the panicking pair, and report it — not crash.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj >/dev/null
# Same failpoints through the block-screened path: survivors of the SoA block
# kernels must flow into the identical quarantine/recovery machinery.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj -block-size 256 >/dev/null
# And through the sharded pipelines: a fault in one shard's engine must be
# quarantined there while the other shards' results merge normally.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj -shards 4 >/dev/null

echo "== observability artifacts (explain report, event log, trace, metrics)"
# Run the deterministic CI workload fully instrumented and archive what it
# emits: the -explain cost model, the sampled pair-decision event log, the
# Chrome trace, and the metrics snapshot. The snapshot doubles as the input
# to the prune-rate drift gate below; the workload is seeded, so its prune
# rates are exactly reproducible.
ART="${CI_ARTIFACTS:-ci-artifacts}"
mkdir -p "$ART"
go run ./cmd/simjoin -workload er -scale 0.5 -tau 1 -alpha 0.5 -mode opt \
	-explain -events "$ART/events.jsonl" -events-every 10 \
	-stats-json "$ART/stats.json" -trace-out "$ART/trace.json" > "$ART/join-explain.txt"
grep -q 'effective-cost order' "$ART/join-explain.txt"
test -s "$ART/events.jsonl"
# The same workload through the block-screened path (kept out of stats.json so
# the benchgate prune-rate baseline stays pinned to the scalar chain): the
# explain report must rank the block stage at chain position -1.
go run ./cmd/simjoin -workload er -scale 0.5 -tau 1 -alpha 0.5 -mode opt \
	-block-size 256 -explain > "$ART/join-explain-block.txt"
grep -Eq '^[[:space:]]*-1[[:space:]]+block' "$ART/join-explain-block.txt"
# The sharded merge stage's -explain view: the per-shard balance table and
# the max/mean imbalance line must render with one row per shard.
go run ./cmd/simjoin -workload er -scale 0.5 -tau 1 -alpha 0.5 -mode opt \
	-shards 4 -explain > "$ART/join-explain-shard.txt"
grep -q 'per-shard balance (merge stage):' "$ART/join-explain-shard.txt"
grep -q 'shard imbalance (max/mean pairs):' "$ART/join-explain-shard.txt"

echo "== chaos soak (simjoind + loadgen, failpoints armed, race-built)"
# Out-of-process half of the chaos harness (the in-process half is
# TestChaosSoak under -race above): boot a race-built resident service with
# panics/errors injected at every layer, drive it with concurrent askers
# sized to force shedding and degradation, gate on the envelope's contract
# (exact tier accounting, zero transport errors, shed>0, degraded>0, client
# P99 bounded), then SIGTERM and require a clean drain with the stats
# artifact flushed.
soaktmp=$(mktemp -d)
go build -race -o "$soaktmp/simjoind" ./cmd/simjoind
go build -o "$soaktmp/loadgen" ./cmd/loadgen
SIMJOIN_FAILPOINTS='server.join=error#40,core.pair=panic#20,ged.compute=error#60' \
	"$soaktmp/simjoind" -workload er -tau 2 -alpha 0.5 \
	-addr 127.0.0.1:0 -addr-file "$soaktmp/addr.txt" \
	-max-inflight 4 -max-queue 8 -request-timeout 5s -breaker-window 64 \
	-stats-json "$ART/soak-stats.json" 2> "$ART/soak-server.log" &
soakpid=$!
for _ in $(seq 1 100); do
	[ -s "$soaktmp/addr.txt" ] && break
	sleep 0.1
done
test -s "$soaktmp/addr.txt"
"$soaktmp/loadgen" -url "http://$(cat "$soaktmp/addr.txt")" \
	-n "${SOAK_REQUESTS:-1500}" -workers 48 -timeout 15s \
	-gate-shed -gate-degrade -gate-p99 8s -json "$ART/soak-client.json"
kill -TERM "$soakpid"
wait "$soakpid"
# The flushed snapshot must record a clean drain and zero uncounted panics.
grep -q '"cleanDrain": true' "$ART/soak-stats.json"
grep -q '"server_panics_total": 0' "$ART/soak-stats.json"
rm -rf "$soaktmp"

echo "== fuzz smoke (20s per target)"
go test -run '^$' -fuzz '^FuzzParseQuery$' -fuzztime 20s ./internal/sparql
go test -run '^$' -fuzz '^FuzzParseTriples$' -fuzztime 20s ./internal/rdf
go test -run '^$' -fuzz '^FuzzDecodeJoinRequest$' -fuzztime 20s ./internal/server
go test -run '^$' -fuzz '^FuzzDecodeAskRequest$' -fuzztime 20s ./internal/server

echo "== benchmark regression gate (vs BENCH_join.json, +25% ns/op, +10% allocs/op, ±5pp prune rate)"
# bench.sh covers the join drivers (BenchmarkJoinER/IndexedER/TopK plus the
# block-screened JoinERBlock/JoinIndexedERBlock variants) and the per-pair
# kernel micro-benchmarks (BenchmarkFilterChainSig, BenchmarkWorldLowerBound,
# BenchmarkBlockScreen); the allocs gate keeps the zero-alloc kernels at
# exactly zero. -stats replays the metrics snapshot archived above to pin the
# filter chain's per-bound prune rates against the baseline's prune_rates.
benchtmp=$(mktemp -d)
trap 'rm -rf "$benchtmp"' EXIT
OUT="$benchtmp/bench.json" COUNT=3 make bench-join >/dev/null
go run ./scripts/benchgate -baseline BENCH_join.json -current "$benchtmp/bench.json" \
	-max-regress 25 -max-allocs-regress 10 -stats "$ART/stats.json" -max-prune-drift 5

echo "== sharded-join regression gate (vs BENCH_shard.json, milestone entries optional)"
# bench_shard.sh measures the sharded pipelines against the single engine on
# the smoke template workload. The committed baseline also carries the
# env-gated BenchmarkShardMilestone trajectory (measured with SHARD_MILESTONE
# set); routine CI skips it, so those entries pass through -optional.
OUT="$benchtmp/bench_shard.json" COUNT=3 make bench-shard >/dev/null
go run ./scripts/benchgate -baseline BENCH_shard.json -current "$benchtmp/bench_shard.json" \
	-max-regress 25 -max-allocs-regress 10 -optional '^BenchmarkShardMilestone'

echo "CI passed"
