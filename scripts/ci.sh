#!/bin/sh
# CI entry point: formatting, vet, build, full tests, and race detection on
# the concurrency-heavy packages. Run from the repository root.
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (core, obs)"
go test -race ./internal/core ./internal/obs

echo "CI passed"
