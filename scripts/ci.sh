#!/bin/sh
# CI entry point: formatting, vet, build, full tests, and race detection on
# the concurrency-heavy packages. Run from the repository root.
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test (shuffled)"
go test -shuffle=on ./...

echo "== go test -race (core, filter, ged, obs, fault)"
go test -race ./internal/core ./internal/filter ./internal/ged ./internal/obs ./internal/fault

echo "== fault injection (failpoints armed end-to-end)"
# Arm failpoints through the environment and run a small join: the pipeline
# must complete, quarantine the panicking pair, and report it — not crash.
SIMJOIN_FAILPOINTS='ged.compute=error#5,core.pair=panic#1' \
	go run ./cmd/simjoin -workload er -scale 0.3 -tau 1 -alpha 0.5 -mode simj >/dev/null

echo "== fuzz smoke (20s per target)"
go test -run '^$' -fuzz '^FuzzParseQuery$' -fuzztime 20s ./internal/sparql
go test -run '^$' -fuzz '^FuzzParseTriples$' -fuzztime 20s ./internal/rdf

echo "== benchmark regression gate (vs BENCH_join.json, +25% ns/op, +10% allocs/op)"
# bench.sh covers the join drivers (BenchmarkJoinER/IndexedER/TopK) and the
# per-pair kernel micro-benchmarks (BenchmarkFilterChainSig,
# BenchmarkWorldLowerBound); the allocs gate keeps the zero-alloc kernels at
# exactly zero.
benchtmp=$(mktemp -d)
trap 'rm -rf "$benchtmp"' EXIT
OUT="$benchtmp/bench.json" COUNT=3 make bench-join >/dev/null
go run ./scripts/benchgate -baseline BENCH_join.json -current "$benchtmp/bench.json" -max-regress 25 -max-allocs-regress 10

echo "CI passed"
