#!/bin/sh
# Benchmark the sharded join against the single-engine path and emit the
# BENCH_shard.json trajectory (same v2 schema as scripts/bench.sh).
#
# Two suites run:
#   BenchmarkShardedJoin      smoke-scale template workload (10^3 x 10^2),
#                             single vs 2/8 shards vs 8 shards + block screen
#   BenchmarkShardMilestone   the 10^6 x 10^5 milestone workload at the
#                             fraction in SHARD_MILESTONE (skipped when unset;
#                             the committed baseline was measured at 0.1, i.e.
#                             10^5 x 10^4 = 10^9 pairs on one core)
#
# CI gates BENCH_shard.json with scripts/benchgate and
# `-optional '^BenchmarkShardMilestone'`, so routine runs may skip the
# milestone suite without failing the gate.
#
# Environment overrides:
#   COUNT            repetitions per benchmark (default 3)
#   SHARD_MILESTONE  milestone fraction in (0, 1]; empty skips the milestone
#   OUT              output JSON path (default BENCH_shard.json)
set -eu

COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_shard.json}"
PATTERN='^BenchmarkShard(edJoin|Milestone)$'

raw=$(SHARD_MILESTONE="${SHARD_MILESTONE:-}" go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" -timeout 2h .)
echo "$raw"

echo "$raw" | awk -v out="$OUT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	ns[name] += $3
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op")      bytes[name]  += $(i - 1)
		if ($(i) == "allocs/op") allocs[name] += $(i - 1)
	}
	n[name]++
}
END {
	printf "{\n  \"benchmarks\": {\n" > out
	i = 0
	for (name in n) keys[i++] = name
	# Deterministic key order via a simple insertion sort.
	for (a = 1; a < i; a++) {
		for (b = a; b > 0 && keys[b] < keys[b-1]; b--) {
			tmp = keys[b]; keys[b] = keys[b-1]; keys[b-1] = tmp
		}
	}
	for (a = 0; a < i; a++) {
		name = keys[a]
		printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f, \"samples\": %d}%s\n", \
			name, ns[name] / n[name], bytes[name] / n[name], allocs[name] / n[name], n[name], \
			(a < i - 1) ? "," : "" > out
	}
	printf "  }\n}\n" > out
}
'
echo "wrote $OUT"
