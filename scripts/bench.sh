#!/bin/sh
# Benchmark the join hot paths and emit a machine-readable summary.
#
# Runs the join suite (BenchmarkJoinER, BenchmarkJoinIndexedER,
# BenchmarkJoinTopK, the screening-bound BenchmarkJoinERScreen, and their
# block-screened *Block variants) plus the per-pair kernel micro-benchmarks
# (BenchmarkFilterChainSig, BenchmarkWorldLowerBound, BenchmarkBlockScreen)
# with -benchmem,
# averages the repetitions, and writes
# BENCH_join.json in the v2 schema: {"benchmarks": {name: {ns_per_op,
# allocs_per_op, bytes_per_op, samples}}}. The raw `go test` output is echoed
# so regressions are visible in logs too.
#
# Note: refreshing the baseline this way drops its prune_rates section; re-bake
# it with `go run ./scripts/benchgate -update-prune -stats <stats.json>`.
#
# Environment overrides:
#   COUNT   repetitions per benchmark (default 5)
#   PATTERN benchmark regexp (default covers the join + kernel suite above)
#   OUT     output JSON path (default BENCH_join.json)
set -eu

COUNT="${COUNT:-5}"
PATTERN="${PATTERN:-^Benchmark(Join(ER|IndexedER|TopK|ERScreen)(Block)?|FilterChainSig|WorldLowerBound|BlockScreen)\$}"
OUT="${OUT:-BENCH_join.json}"

raw=$(go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" .)
echo "$raw"

echo "$raw" | awk -v out="$OUT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	ns[name] += $3
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op")      bytes[name]  += $(i - 1)
		if ($(i) == "allocs/op") allocs[name] += $(i - 1)
	}
	n[name]++
}
END {
	printf "{\n  \"benchmarks\": {\n" > out
	count = 0
	for (name in n) count++
	i = 0
	# Deterministic key order via a simple insertion sort.
	for (name in n) keys[i++] = name
	for (a = 1; a < i; a++) {
		for (b = a; b > 0 && keys[b] < keys[b-1]; b--) {
			tmp = keys[b]; keys[b] = keys[b-1]; keys[b-1] = tmp
		}
	}
	for (a = 0; a < i; a++) {
		name = keys[a]
		printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f, \"samples\": %d}%s\n", \
			name, ns[name] / n[name], bytes[name] / n[name], allocs[name] / n[name], n[name], \
			(a < i - 1) ? "," : "" > out
	}
	printf "  }\n}\n" > out
}
'
echo "wrote $OUT"
