package simjoin

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7, Appendix F) at a reduced scale, plus kernel micro-benchmarks and the
// ablations of DESIGN.md. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-scale tables are printed by cmd/experiments; here each experiment
// is executed end to end so regressions in any stage (generators, NLQ
// pipeline, bounds, join, templates, Q/A) show up as timing or metric
// changes. Custom metrics expose the headline number of each artifact.

import (
	"math/rand"
	"testing"

	"simjoin/internal/core"
	"simjoin/internal/experiments"
	"simjoin/internal/filter"
	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/nlq"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

// benchScale keeps each experiment iteration around a second or less.
const benchScale = experiments.Scale(0.25)

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2Datasets(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3EffectTau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3EffectTau(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9EffectAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9EffectAlpha(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cases, err := experiments.Fig10CaseStudy(benchScale, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(cases) == 0 {
			b.Fatal("case study produced no templates")
		}
	}
}

func BenchmarkFig11AlphaEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11AlphaEfficiency(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12TauEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12TauEfficiency(benchScale, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13GroupNumber(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13GroupNumber(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14LabelCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14LabelCount(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15FilterComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15FilterComparison(benchScale, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4QASystems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4QASystems(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5MatchProportion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5MatchProportion(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17RelationCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig17RelationCount(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18FailureAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig18FailureAnalysis(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations (DESIGN.md §4).

func BenchmarkAblationBoundTightness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBoundTightness(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEarlyExit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEarlyExit(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGroupingPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGroupingPolicy(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationParallelism(benchScale, []int{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEdgeUncertainty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEdgeUncertainty(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTotalProbabilityBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTotalProbabilityBound(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIndexedJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationIndexedJoin(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEngines(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// Kernel micro-benchmarks.

func benchGraphPair(seed int64, n, e int) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"A", "B", "C", "D", "E", "?x"}
	mk := func() *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(labels[rng.Intn(len(labels))])
		}
		for t := 0; t < e*3 && g.NumEdges() < e; t++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, "p")
			}
		}
		return g
	}
	return mk(), mk()
}

func BenchmarkGEDExact(b *testing.B) {
	q, g := benchGraphPair(1, 7, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ged.Distance(q, g)
	}
}

func BenchmarkGEDThreshold(b *testing.B) {
	q, g := benchGraphPair(2, 10, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ged.WithinThreshold(q, g, 3)
	}
}

func BenchmarkCSSLowerBound(b *testing.B) {
	q, g := benchGraphPair(3, 16, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter.CSSLowerBound(q, g)
	}
}

func BenchmarkCSSLowerBoundUncertain(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 2
	d, u := workload.ER(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter.CSSLowerBoundUncertain(d[0], u[0])
	}
}

func BenchmarkSimilarityUpperBound(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 2
	d, u := workload.ER(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter.SimilarityUpperBound(d[0], u[0], 2)
	}
}

func BenchmarkWorldEnumeration(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 1
	_, u := workload.ER(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		u[0].Worlds(func(*graph.Graph, float64) bool { n++; return true })
	}
}

func BenchmarkPartitionWorlds(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 1
	_, u := workload.ER(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u[0].PartitionWorlds(10, nil)
	}
}

func BenchmarkJoinER(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 15
	d, u := workload.ER(cfg)
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Join(d, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNLQInterpret(b *testing.B) {
	w, err := workload.GenerateQA(workload.QALD3Config())
	if err != nil {
		b.Fatal(err)
	}
	_ = w
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := experiments.Prepare(w)
		if len(p.U) == 0 {
			b.Fatal("nothing interpreted")
		}
	}
}

func BenchmarkGEDApproximate(b *testing.B) {
	q, g := benchGraphPair(4, 40, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ged.Approximate(q, g, 4)
	}
}

func BenchmarkJoinIndexedER(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 15
	d, u := workload.ER(cfg)
	idx := core.BuildIndex(d)
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.JoinIndexed(idx, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinERBlock is BenchmarkJoinER with the block-screening stage on:
// the uncertain side packed into SoA blocks and every query screened against
// whole blocks before any per-pair bound runs.
func BenchmarkJoinERBlock(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 15
	d, u := workload.ER(cfg)
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	opts.BlockSize = filter.DefaultBlockSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Join(d, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinIndexedERBlock is BenchmarkJoinIndexedER with block screening
// replacing the index's per-graph prescreen scan.
func BenchmarkJoinIndexedERBlock(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 15
	d, u := workload.ER(cfg)
	idx := core.BuildIndex(d)
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	opts.BlockSize = filter.DefaultBlockSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.JoinIndexed(idx, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinERScreen and its Block twin isolate the screening-bound
// regime: a 240×240 ER join at tau=0, alpha=0.9 in CSS-only mode prunes
// essentially every one of its 57.6k pairs, so wall-clock is dominated by the
// cost of *deciding* pairs rather than verifying survivors. The scalar path
// pays the per-pair chain for each pair; the block path answers whole
// 256-graph blocks with the word-parallel SoA kernels first.
func BenchmarkJoinERScreen(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 240
	d, u := workload.ER(cfg)
	opts := core.DefaultOptions()
	opts.Tau = 0
	opts.Alpha = 0.9
	opts.Mode = core.ModeCSSOnly
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Join(d, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinERScreenBlock(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 240
	d, u := workload.ER(cfg)
	opts := core.DefaultOptions()
	opts.Tau = 0
	opts.Alpha = 0.9
	opts.Mode = core.ModeCSSOnly
	opts.BlockSize = filter.DefaultBlockSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Join(d, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinTopK(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 12
	d, u := workload.ER(cfg)
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.JoinTopK(d, u, opts, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeEditDistance(b *testing.B) {
	w, err := workload.GenerateQA(workload.QALD3Config())
	if err != nil {
		b.Fatal(err)
	}
	t1 := nlq.BuildDepTree(w.Questions[0].Text, w.KB.Lexicon)
	t2 := nlq.BuildDepTree(w.Questions[1].Text, w.KB.Lexicon)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nlq.TreeEditDistance(t1, t2)
	}
}

// BenchmarkFilterChainSig measures steady-state per-pair evaluation of the
// signature-based filter chain (css, prob, prob-tight) with warmed memoized
// sub-signatures and a reused scratch — the engine's hot path per candidate
// pair. Expected: 0 allocs/op.
func BenchmarkFilterChainSig(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 4
	d, u := workload.ER(cfg)
	qsigs := filter.NewQSigs(d)
	gsigs := filter.NewGSigs(u)
	chain := []filter.Bound{filter.MustBound("css"), filter.MustBound("prob"), filter.MustBound("prob-tight")}
	var sc filter.Scratch
	var pc filter.PairContext
	eval := func(qs *filter.QSig, gs *filter.GSig) {
		pc = filter.PairContext{QS: qs, GS: gs, Tau: 2, Alpha: 0.5, GroupCount: 10, Scratch: &sc}
		for _, bd := range chain {
			bd.Apply(&pc)
		}
	}
	for _, qs := range qsigs { // warm the memoized per-condition sub-signatures
		for _, gs := range gsigs {
			eval(qs, gs)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval(qsigs[i%len(qsigs)], gsigs[(i/len(qsigs))%len(gsigs)])
	}
}

// BenchmarkBlockScreen measures the SoA block kernel itself: one query
// signature screened against blocks of 256 uncertain graphs (size, label
// overlap and mass screens with a survivor bitmap), i.e. the per-pair cost of
// the block stage. Expected: 0 allocs/op.
func BenchmarkBlockScreen(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 512 // two full blocks on the uncertain side
	d, u := workload.ER(cfg)
	qsigs := filter.NewQSigs(d[:8])
	set := filter.NewGBlockSet(u, filter.DefaultBlockSize)
	var sc filter.BlockScratch
	screen := func() {
		for _, qs := range qsigs {
			for bi := 0; bi < set.NumBlocks(); bi++ {
				set.Block(bi).Screen(qs, 2, 0.5, &sc)
			}
		}
	}
	screen() // warm the scratch
	pairs := int64(len(qsigs)) * int64(len(u))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		screen()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*pairs), "ns/pair")
}

// BenchmarkWorldLowerBound measures the per-possible-world CSS pre-check of
// the verification stage: λV recomputed by integer label-id equality, the
// world-invariant constants cached in the PairVerifier. Expected: 0 allocs/op.
func BenchmarkWorldLowerBound(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 2
	d, u := workload.ER(cfg)
	qs := filter.NewQSig(d[0])
	gs := filter.NewGSig(u[0])
	w, _ := u[0].MostLikelyWorld()
	var pv filter.PairVerifier
	pv.Reset(qs, gs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pv.WorldLowerBound(w)
	}
}

var sinkUG *ugraph.Graph

func BenchmarkUncertainClone(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 1
	_, u := workload.ER(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkUG = u[0].Clone()
	}
}
